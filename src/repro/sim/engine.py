"""The discrete-event simulation engine.

A :class:`Simulator` is a priority queue of pending callbacks plus a
clock.  Components capture a reference to the simulator, call
:meth:`Simulator.schedule` / :meth:`Simulator.post`, and read
:attr:`Simulator.now`.  The engine is deliberately minimal — all protocol
logic lives in the components.

Two scheduling flavours share one heap:

* :meth:`Simulator.schedule` returns a cancellable :class:`EventHandle`
  — for timers that may be disarmed (drop timers, RTO, delayed ACKs).
* :meth:`Simulator.post` is fire-and-forget: no handle is allocated at
  all, the bare callable sits directly in the heap entry.  This is the
  packet hot path (link transmission/propagation, monitor ticks), where
  a per-event handle object would be pure garbage-collector load.

Both accept an optional ``args`` tuple so components can pass one cached
bound method plus arguments instead of allocating a fresh closure per
event, and a ``label`` that is only ever *read* under ``profile=True`` —
callers precompute labels once per component instead of formatting an
f-string per event.
"""

from __future__ import annotations

import heapq
import time as _time
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:
    from pathlib import Path

from repro.sim.errors import (
    DeadlineExceededError,
    InvariantViolation,
    LivelockError,
    ScheduleInPastError,
    SimulationError,
)
from repro.sim.events import EventHandle
from repro.sim.profile import SimProfile, SimStats, build_stats
from repro.sim.rng import RngRegistry

#: How many dispatched events pass between wall-clock deadline checks.
#: ``time.monotonic`` costs ~50 ns, an event dispatch ~1 µs, so checking
#: every event would be measurable; every 256th is free and still bounds
#: the overshoot to well under a millisecond of wall time.
_DEADLINE_CHECK_INTERVAL = 256

#: Under ``sanitize=True``, how many dispatches pass between live-event
#: counter audits (each audit is an O(heap) scan, so amortize it).
_SANITIZE_AUDIT_INTERVAL = 1024

_INF = float("inf")

#: One heap entry: ``(time, seq, target, args, label)``.
_HeapEntry = Tuple[float, int, Any, Optional[Tuple[Any, ...]], str]

# Bound once: a module-global load is one dict probe cheaper than
# ``heapq.heappush`` (global + attribute) in the per-event schedulers.
_heappush = heapq.heappush

#: The compiled ``Simulator`` subclass from ``repro._cext._core``, or
#: None when the pure engine is active.  Written only by
#: :mod:`repro.core.engine_select`; read by ``Simulator.__new__``.
_COMPILED_SIMULATOR: Optional[type] = None


def _resolve_engine() -> Optional[type]:
    """First-construction engine resolution (``REPRO_ENGINE``, default auto)."""
    from repro.core import engine_select

    engine_select.active()
    return _COMPILED_SIMULATOR


class Simulator:
    """Heap-based discrete-event scheduler with a seeded RNG registry.

    Args:
        seed: Master seed for the per-component RNG streams.
        profile: Collect per-label-group event counts, callback wall
            time, and the live-event high-water mark (see
            :mod:`repro.sim.profile`); read the report from
            :attr:`stats`.  Off by default — profiling adds a
            ``perf_counter`` pair around every dispatch.
        sanitize: Run cheap structural invariant checks during dispatch
            (heap time monotonicity, live-event counter audits) and
            enable per-ACK checks in invariant-aware components (the
            TCP-PR sender reads this flag).  A violation raises
            :class:`~repro.sim.errors.InvariantViolation` at the moment
            the invariant breaks rather than letting the run diverge
            silently.  Off by default — sanitizing forces the general
            (non-fast-path) run loop.

    Attributes:
        now: Current simulation time in seconds.
        rng: The :class:`RngRegistry` for this run.
        sanitize: The sanitizer flag; components read it dynamically, so
            tests may flip it after building a scenario.
    """

    __slots__ = (
        "now",
        "rng",
        "sanitize",
        "_heap",
        "_seq",
        "_dispatched",
        "_live",
        "_running",
        "_profile",
        "_components",
    )

    def __init__(
        self, seed: int = 0, profile: bool = False, sanitize: bool = False
    ) -> None:
        self.now: float = 0.0
        self.rng = RngRegistry(seed)
        self.sanitize = sanitize
        # Heap entries are (time, seq, target, args, label) tuples: tuple
        # comparison is C-level and never reaches element 2, so targets
        # need no ordering.  ``target`` is an EventHandle for cancellable
        # events and the bare callable for fire-and-forget posts.
        self._heap: List[_HeapEntry] = []
        self._seq = 0
        self._dispatched = 0
        # Live (not cancelled, not yet dispatched) events.  Maintained by
        # schedule/post/dispatch and EventHandle.cancel so introspection
        # never has to scan the heap.
        self._live = 0
        self._running = False
        self._profile: Optional[SimProfile] = SimProfile() if profile else None
        # Name -> component registry (insertion-ordered).  Purely
        # passive: registration never schedules events or affects
        # dispatch.  repro.checkpoint uses it to list what a snapshot
        # contains and to hand components back after a resume.
        self._components: Dict[str, Any] = {}

    def __new__(cls, *args: Any, **kwargs: Any) -> "Simulator":
        # Engine selection happens here, not at import time: constructing
        # the *facade* class returns an instance of whichever build
        # repro.core.engine_select has active (the compiled subclass when
        # the extension is built and selected, this class otherwise).
        # Late binding means import order never matters and one process
        # can hold pure and compiled simulators side by side.  Explicit
        # subclass construction (including the compiled class itself)
        # passes straight through.
        if cls is Simulator:
            impl = _COMPILED_SIMULATOR
            if impl is None:
                impl = _resolve_engine()
            if impl is not None:
                new: Callable[..., "Simulator"] = impl.__new__
                return new(impl)
        return object.__new__(cls)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def reserve_seq(self) -> int:
        """Allocate a tie-break sequence number without pushing an event.

        Same-time events fire in ascending ``seq`` order, so a component
        that coalesces many logical timers into one heap event (the
        TCP-PR flow drop timer, the lazily-extended RTO) can reserve a
        seq at the moment the *logical* timer is armed and later pass it
        to :meth:`schedule` — the coalesced event then fires exactly
        where the individual event it replaces would have, preserving
        tie order against unrelated same-time events.  A reserved seq
        must back at most one live event at a time.
        """
        seq = self._seq
        self._seq = seq + 1
        return seq

    def schedule(
        self,
        time: float,
        callback: Callable[..., Any],
        label: str = "",
        args: Optional[Tuple[Any, ...]] = None,
        seq: Optional[int] = None,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time``.

        Args:
            time: Absolute fire time (``>= now``).
            callback: Called as ``callback(*args)`` (no-arg if ``args``
                is None) when the event fires.
            label: Profiling tag; pass a per-component constant, not a
                per-event f-string.
            args: Optional argument tuple, so a cached bound method can
                replace a per-call closure.
            seq: A previously :meth:`reserve_seq`-ed tie-breaker; None
                (the default) allocates a fresh one.

        Returns:
            A cancellable :class:`EventHandle`.

        Raises:
            ScheduleInPastError: if ``time`` is before the current clock.
        """
        if time < self.now:
            raise ScheduleInPastError(time, self.now)
        if seq is None:
            seq = self._seq
            self._seq = seq + 1
        handle = EventHandle(time, seq, callback, label, owner=self)
        _heappush(self._heap, (time, seq, handle, args, label))
        live = self._live + 1
        self._live = live
        profile = self._profile
        if profile is not None and live > profile.heap_high_water:
            profile.heap_high_water = live
        return handle

    def schedule_in(
        self,
        delay: float,
        callback: Callable[..., Any],
        label: str = "",
        args: Optional[Tuple[Any, ...]] = None,
    ) -> EventHandle:
        """Schedule ``callback`` ``delay`` seconds from now (``delay >= 0``)."""
        if delay < 0:
            raise ScheduleInPastError(self.now + delay, self.now)
        return self.schedule(self.now + delay, callback, label, args)

    def post(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Optional[Tuple[Any, ...]] = None,
        label: str = "",
    ) -> None:
        """Schedule a fire-and-forget event — no :class:`EventHandle`.

        The per-event cost is one heap tuple; use this on paths that
        never cancel (packet transmission/propagation, monitor ticks).

        Raises:
            ScheduleInPastError: if ``time`` is before the current clock.
        """
        if time < self.now:
            raise ScheduleInPastError(time, self.now)
        seq = self._seq
        self._seq = seq + 1
        _heappush(self._heap, (time, seq, callback, args, label))
        live = self._live + 1
        self._live = live
        profile = self._profile
        if profile is not None and live > profile.heap_high_water:
            profile.heap_high_water = live

    def post_in(
        self,
        delay: float,
        callback: Callable[..., Any],
        args: Optional[Tuple[Any, ...]] = None,
        label: str = "",
    ) -> None:
        """Fire-and-forget ``delay`` seconds from now (``delay >= 0``).

        Inlined rather than delegating to :meth:`post` — this is the
        single hottest scheduling call (both per-packet link events).
        """
        if delay < 0:
            raise ScheduleInPastError(self.now + delay, self.now)
        seq = self._seq
        self._seq = seq + 1
        _heappush(self._heap, (self.now + delay, seq, callback, args, label))
        live = self._live + 1
        self._live = live
        profile = self._profile
        if profile is not None and live > profile.heap_high_water:
            profile.heap_high_water = live

    def post_batch(
        self,
        events: "List[Tuple[float, Callable[..., Any], Optional[Tuple[Any, ...]], str]]",
    ) -> None:
        """Fire-and-forget a block of events in one bulk heap operation.

        Each item is ``(time, callback, args, label)`` — the positional
        signature of :meth:`post`.  Sequence numbers are allocated in
        item order, so a batch is observably identical to posting the
        items one by one (the heap's pop order depends only on
        ``(time, seq)``, never on internal array layout); callers that
        already hold a block of events — a trace replay schedule, the
        shard driver's admission arrivals, a fault timeline — skip the
        per-event ``heappush`` rebalancing and pay one O(n + k) heapify
        instead of k O(log n) pushes.

        Raises:
            ScheduleInPastError: if any item's time is before the
                current clock (the whole batch is rejected).
        """
        now = self.now
        seq = self._seq
        entries: List[_HeapEntry] = []
        append = entries.append
        for time, callback, args, label in events:
            if time < now:
                raise ScheduleInPastError(time, now)
            append((time, seq, callback, args, label))
            seq += 1
        if not entries:
            return
        self._seq = seq
        heap = self._heap
        # Crossover: heapify touches the whole heap (O(n + k)), pushes
        # cost O(k log n).  For small batches against a big heap, pushes
        # win; for block-sized batches, heapify does.  Either branch
        # yields a valid heap, so dispatch order is unaffected.
        if len(entries) * 4 >= len(heap):
            heap.extend(entries)
            heapq.heapify(heap)
        else:
            for entry in entries:
                _heappush(heap, entry)
        live = self._live + len(entries)
        self._live = live
        profile = self._profile
        if profile is not None and live > profile.heap_high_water:
            profile.heap_high_water = live

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        deadline: Optional[float] = None,
        livelock_threshold: Optional[int] = None,
        checkpoint_every: Optional[float] = None,
        checkpoint_path: "Optional[Path | str]" = None,
    ) -> None:
        """Dispatch events in time order.

        Args:
            until: Stop once the clock would pass this time; the clock is
                left exactly at ``until``.  ``None`` runs until the event
                queue drains.
            max_events: Safety valve — abort with :class:`SimulationError`
                after dispatching this many events (catches accidental
                infinite event loops in tests).  The budget is cumulative
                over the simulator's lifetime (it compares against
                :attr:`dispatched_events`).
            deadline: Wall-clock watchdog — abort with
                :class:`DeadlineExceededError` once this many real seconds
                have elapsed since the call started (checked every
                ``_DEADLINE_CHECK_INTERVAL`` events, so very cheap).
            livelock_threshold: Livelock watchdog — abort with
                :class:`LivelockError` after this many consecutive events
                dispatched without the clock advancing (a zero-delay event
                loop; legitimate same-instant bursts are orders of
                magnitude smaller than a sensible threshold).
            checkpoint_every: Snapshot the simulator to
                ``checkpoint_path`` every this many *simulation* seconds
                (see :mod:`repro.checkpoint`).  The run is executed as a
                sequence of plain segments, so the no-checkpoint path is
                byte-for-byte the code it always was; the final state at
                ``until`` is not snapshotted (the run completed).  Both
                checkpoint arguments must be given together.
            checkpoint_path: Destination file for the periodic snapshot
                (atomically replaced at every boundary).
        """
        if checkpoint_every is not None or checkpoint_path is not None:
            self._run_checkpointed(
                until,
                max_events,
                deadline,
                livelock_threshold,
                checkpoint_every,
                checkpoint_path,
            )
            return
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        if livelock_threshold is not None and livelock_threshold <= 0:
            raise ValueError(
                f"livelock_threshold must be positive, got {livelock_threshold}"
            )
        self._running = True
        started_wall = _time.monotonic() if deadline is not None else 0.0
        stalled = 0
        # The dispatch counter runs as a local and is written back in the
        # finally block: one attribute store per run() instead of one per
        # event.  (Nothing reads it mid-run — the watchdog errors below
        # use the local.)
        dispatched = self._dispatched
        try:
            heap = self._heap
            pop = heapq.heappop
            handle_type = EventHandle
            # Hoisted: the detached-profiling cost inside the loop is one
            # local-variable None check per event.
            profile = self._profile
            until_cmp = _INF if until is None else until
            sanitize = self.sanitize
            if sanitize:
                self._audit_live()
            if (
                max_events is None
                and deadline is None
                and livelock_threshold is None
                and profile is None
                and not sanitize
            ):
                # Fast path: no watchdogs, no profiling — the per-event
                # work is exactly pop, clock advance, callback.  This is
                # the configuration every figure run uses, so the general
                # loop's four per-event None checks are worth forking
                # over.
                if until is None:
                    # Drain-the-queue flavour: nothing can stop short of
                    # an empty heap, so pop directly instead of peeking
                    # first (saves an index plus a compare per event).
                    while heap:
                        head_time, _, target, args, _ = pop(heap)
                        if type(target) is handle_type:
                            callback = target.callback
                            if callback is None:  # cancelled
                                continue
                            target.callback = None
                        else:
                            callback = target
                        self._live -= 1
                        self.now = head_time
                        if args is None:
                            callback()
                        elif len(args) == 1:
                            callback(args[0])
                        else:
                            callback(*args)
                        dispatched += 1
                    return
                while heap:
                    entry = heap[0]
                    target = entry[2]
                    if type(target) is handle_type:
                        callback = target.callback
                        if callback is None:  # lazily-deleted (cancelled)
                            pop(heap)
                            continue
                        if entry[0] > until_cmp:
                            break
                        pop(heap)
                        target.callback = None  # mark dispatched
                    else:
                        callback = target
                        if entry[0] > until_cmp:
                            break
                        pop(heap)
                    self._live -= 1
                    self.now = entry[0]
                    args = entry[3]
                    # One-arg events (a packet) are the overwhelming
                    # majority; a direct call skips CALL_FUNCTION_EX.
                    if args is None:
                        callback()
                    elif len(args) == 1:
                        callback(args[0])
                    else:
                        callback(*args)
                    dispatched += 1
                if until is not None and self.now < until:
                    self.now = until
                return
            while heap:
                entry = heap[0]
                target = entry[2]
                if type(target) is handle_type:
                    callback = target.callback
                    if callback is None:  # lazily-deleted (cancelled)
                        pop(heap)
                        continue
                    head_time = entry[0]
                    if head_time > until_cmp:
                        break
                    pop(heap)
                    target.callback = None  # mark dispatched
                else:
                    callback = target
                    head_time = entry[0]
                    if head_time > until_cmp:
                        break
                    pop(heap)
                self._live -= 1
                if livelock_threshold is not None:
                    if head_time > self.now:
                        stalled = 0
                    else:
                        stalled += 1
                        if stalled >= livelock_threshold:
                            raise LivelockError(head_time, stalled)
                if sanitize and head_time < self.now:
                    raise InvariantViolation(
                        "heap-time-monotonic",
                        f"heap head fires at t={head_time!r} but the clock "
                        f"is already at t={self.now!r} (heap or clock was "
                        "mutated behind the engine's back)",
                    )
                self.now = head_time
                args = entry[3]
                if profile is None:
                    if args is None:
                        callback()
                    else:
                        callback(*args)
                else:
                    started = _time.perf_counter()
                    if args is None:
                        callback()
                    else:
                        callback(*args)
                    profile.record(
                        entry[4], _time.perf_counter() - started
                    )
                dispatched += 1
                if sanitize and dispatched % _SANITIZE_AUDIT_INTERVAL == 0:
                    self._audit_live()
                if max_events is not None and dispatched >= max_events:
                    raise SimulationError(
                        f"event budget exhausted ({max_events} events)"
                    )
                if (
                    deadline is not None
                    and dispatched % _DEADLINE_CHECK_INTERVAL == 0
                    and _time.monotonic() - started_wall > deadline
                ):
                    raise DeadlineExceededError(
                        deadline, self.now, dispatched
                    )
            if sanitize and not heap:
                self._audit_live()  # drained heap must leave _live == 0
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._dispatched = dispatched
            self._running = False

    def _pop_due(self, until_cmp: float) -> Optional[Tuple[Any, ...]]:
        """Pop the next live event due at or before ``until_cmp``.

        Primitive for the compiled engine's general run loop (see
        :func:`_run_general_compiled`); the compiled class overrides it
        in C.  Pops lazily-deleted (cancelled) heads on the way, marks
        handle-backed events dispatched, and decrements the live
        counter — everything the run loops do *before* advancing the
        clock.  Returns ``(time, callback, args, label)`` or None when
        nothing is due.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            target = entry[2]
            if type(target) is EventHandle:
                callback = target.callback
                if callback is None:  # lazily-deleted (cancelled)
                    heapq.heappop(heap)
                    continue
                if entry[0] > until_cmp:
                    return None
                heapq.heappop(heap)
                target.callback = None  # mark dispatched
            else:
                callback = target
                if entry[0] > until_cmp:
                    return None
                heapq.heappop(heap)
            self._live -= 1
            return (entry[0], callback, entry[3], entry[4])
        return None

    def _run_checkpointed(
        self,
        until: Optional[float],
        max_events: Optional[int],
        deadline: Optional[float],
        livelock_threshold: Optional[int],
        checkpoint_every: Optional[float],
        checkpoint_path: "Optional[Path | str]",
    ) -> None:
        """Run in plain segments, snapshotting at each time boundary."""
        if checkpoint_every is None or checkpoint_path is None:
            raise ValueError(
                "checkpoint_every and checkpoint_path must be given together"
            )
        if checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
        # Lazy import: the engine must stay importable (and fast) without
        # the checkpoint subsystem in play.
        from repro.checkpoint.snapshot import save_checkpoint

        started_wall = _time.monotonic() if deadline is not None else 0.0
        while True:
            boundary = self.now + checkpoint_every
            stop = boundary if until is None else min(until, boundary)
            remaining = None
            if deadline is not None:
                remaining = deadline - (_time.monotonic() - started_wall)
                if remaining <= 0:
                    raise DeadlineExceededError(
                        deadline, self.now, self._dispatched
                    )
            self.run(stop, max_events, remaining, livelock_threshold)
            if until is not None and until <= boundary:
                return  # reached the caller's horizon (no trailing snapshot)
            if self._live == 0:
                return  # queue drained inside the segment
            save_checkpoint(self, checkpoint_path)

    @classmethod
    def resume(cls, path: "Path | str") -> "Simulator":
        """Load a checkpoint file and return the restored simulator.

        Equivalent to ``load_checkpoint(path).resume()`` — restores
        process-global counters and, under ``sanitize=True``, audits the
        restored heap (see :meth:`_audit_resume`).
        """
        from repro.checkpoint.snapshot import load_checkpoint

        restored = load_checkpoint(path).resume()
        if not isinstance(restored, cls):
            raise SimulationError(
                f"checkpoint {path} holds a {type(restored).__name__}, "
                f"not a {cls.__name__}"
            )
        return restored

    def save_checkpoint(self, path: "Path | str") -> None:
        """Snapshot this simulator to ``path`` (see :mod:`repro.checkpoint`)."""
        from repro.checkpoint.snapshot import save_checkpoint

        save_checkpoint(self, path)

    # ------------------------------------------------------------------
    # Component registry
    # ------------------------------------------------------------------
    def register_component(
        self, name: str, component: Any, replace: bool = True
    ) -> None:
        """Register a named component with this simulator.

        Purely passive bookkeeping (no events, no behavior change):
        the checkpoint subsystem snapshots the registry with the graph
        and callers use :meth:`component` to find their objects again
        after a resume.  Agents, links, and networks self-register at
        construction; ``replace=True`` (the default) lets repeated
        hand-built scenarios reuse names, while ``replace=False`` turns
        an accidental collision into a :class:`SimulationError`.
        """
        if not replace and name in self._components:
            raise SimulationError(f"component {name!r} is already registered")
        self._components[name] = component

    def deregister_component(self, name: str) -> None:
        """Drop a component from the registry (missing names are ignored).

        Long-horizon scenarios with flow churn retire completed agents
        this way so the registry (and checkpoint payloads) stay bounded
        by the *live* population, not everything that ever ran.
        """
        self._components.pop(name, None)

    def component(self, name: str) -> Any:
        """Look up a registered component by name.

        Raises:
            SimulationError: if nothing is registered under ``name``.
        """
        try:
            return self._components[name]
        except KeyError:
            raise SimulationError(
                f"no component registered as {name!r} "
                f"(known: {sorted(self._components)})"
            ) from None

    @property
    def components(self) -> Dict[str, Any]:
        """A copy of the name -> component registry."""
        return dict(self._components)

    def step(self) -> bool:
        """Dispatch the single next pending event.

        Returns:
            True if an event was dispatched, False if the queue is empty.
        """
        heap = self._heap
        profile = self._profile
        while heap:
            head_time, _, target, args, label = heapq.heappop(heap)
            if type(target) is EventHandle:
                callback = target.callback
                if callback is None:
                    continue
                target.callback = None
            else:
                callback = target
            self._live -= 1
            self.now = head_time
            if profile is None:
                if args is None:
                    callback()
                else:
                    callback(*args)
            else:
                started = _time.perf_counter()
                if args is None:
                    callback()
                else:
                    callback(*args)
                profile.record(label, _time.perf_counter() - started)
            self._dispatched += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Sanitizer
    # ------------------------------------------------------------------
    def _audit_live(self) -> None:
        """Recount live heap entries against the O(1) ``_live`` counter.

        Sanitizer-mode only (O(heap) scan).  A mismatch means something
        pushed onto or dropped from the heap without going through
        schedule/post/cancel bookkeeping.
        """
        actual = 0
        for entry in self._heap:
            target = entry[2]
            if type(target) is EventHandle and target.callback is None:
                continue  # lazily-deleted (cancelled) entry
            actual += 1
        if actual != self._live:
            raise InvariantViolation(
                "live-counter",
                f"live-event counter says {self._live} but the heap holds "
                f"{actual} live entries (direct heap mutation, or a "
                "double-counted cancel)",
            )

    def _audit_resume(self) -> None:
        """Structural audit of a freshly-restored simulator.

        Called by :meth:`repro.checkpoint.snapshot.Checkpoint.resume`
        when the restored simulator has ``sanitize=True``: every live
        restored heap entry must fire at or after the restored clock,
        and the O(1) live-event counter must match the heap (a mismatch
        means the snapshot itself was taken from a corrupted engine, or
        the restore path lost events).
        """
        for entry in self._heap:
            target = entry[2]
            if type(target) is EventHandle and target.callback is None:
                continue  # lazily-deleted (cancelled) entry
            if entry[0] < self.now:
                raise InvariantViolation(
                    "resume-heap-time",
                    f"restored heap event {entry[4]!r} fires at "
                    f"t={entry[0]!r}, before the restored clock "
                    f"t={self.now!r}",
                )
        self._audit_live()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the queue (O(1))."""
        return self._live

    @property
    def dispatched_events(self) -> int:
        """Total number of events dispatched so far."""
        return self._dispatched

    @property
    def event_seq(self) -> int:
        """The next tie-break sequence number (monotonic event counter)."""
        return self._seq

    @property
    def stats(self) -> SimStats:
        """Dispatch counters plus, under ``profile=True``, the per-group
        event/wall-time breakdown and live-event high-water mark."""
        return build_stats(self._dispatched, self._live, self._profile)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty.

        Pops lazily-deleted (cancelled) heads on the way — the heap root
        is already the minimum, so no sort is ever needed, and discarded
        entries don't have to be skipped again by the next caller.
        """
        heap = self._heap
        while heap:
            target = heap[0][2]
            if type(target) is not EventHandle or target.callback is not None:
                return heap[0][0]
            heapq.heappop(heap)
        return None

    def __repr__(self) -> str:
        return (
            f"<Simulator t={self.now:.6f} pending={self._live} "
            f"dispatched={self._dispatched}>"
        )


def _run_general_compiled(
    sim: "Simulator",
    until: Optional[float],
    max_events: Optional[int],
    deadline: Optional[float],
    livelock_threshold: Optional[int],
) -> None:
    """General (watchdog/profile/sanitize) run loop for the compiled engine.

    The compiled ``Simulator.run`` handles only the fast paths in C and
    delegates here — a line-for-line mirror of the pure general loop in
    :meth:`Simulator.run` — whenever watchdogs, profiling, or the
    sanitizer are in play.  The per-event pop/cancel/mark-dispatched
    work runs through the C ``_pop_due`` primitive, so the cost of
    keeping this path in Python is one Python-level iteration per
    *dispatched* event, which the watchdog checks dominate anyway.
    Checked-path semantics (error types, messages, check cadence,
    counter staleness) are identical between the builds by construction.
    """
    if sim._running:
        raise SimulationError("Simulator.run() is not reentrant")
    if deadline is not None and deadline <= 0:
        raise ValueError(f"deadline must be positive, got {deadline}")
    if livelock_threshold is not None and livelock_threshold <= 0:
        raise ValueError(
            f"livelock_threshold must be positive, got {livelock_threshold}"
        )
    sim._running = True
    started_wall = _time.monotonic() if deadline is not None else 0.0
    stalled = 0
    dispatched = sim._dispatched
    try:
        profile = sim._profile
        until_cmp = _INF if until is None else until
        sanitize = sim.sanitize
        if sanitize:
            sim._audit_live()
        pop_due = sim._pop_due
        while True:
            popped = pop_due(until_cmp)
            if popped is None:
                break
            head_time, callback, args, label = popped
            if livelock_threshold is not None:
                if head_time > sim.now:
                    stalled = 0
                else:
                    stalled += 1
                    if stalled >= livelock_threshold:
                        raise LivelockError(head_time, stalled)
            if sanitize and head_time < sim.now:
                raise InvariantViolation(
                    "heap-time-monotonic",
                    f"heap head fires at t={head_time!r} but the clock "
                    f"is already at t={sim.now!r} (heap or clock was "
                    "mutated behind the engine's back)",
                )
            sim.now = head_time
            if profile is None:
                if args is None:
                    callback()
                else:
                    callback(*args)
            else:
                started = _time.perf_counter()
                if args is None:
                    callback()
                else:
                    callback(*args)
                profile.record(label, _time.perf_counter() - started)
            dispatched += 1
            if sanitize and dispatched % _SANITIZE_AUDIT_INTERVAL == 0:
                sim._audit_live()
            if max_events is not None and dispatched >= max_events:
                raise SimulationError(
                    f"event budget exhausted ({max_events} events)"
                )
            if (
                deadline is not None
                and dispatched % _DEADLINE_CHECK_INTERVAL == 0
                and _time.monotonic() - started_wall > deadline
            ):
                raise DeadlineExceededError(deadline, sim.now, dispatched)
        if sanitize and not sim._heap:
            sim._audit_live()  # drained heap must leave _live == 0
        if until is not None and sim.now < until:
            sim.now = until
    finally:
        sim._dispatched = dispatched
        sim._running = False

"""The discrete-event simulation engine.

A :class:`Simulator` is a priority queue of :class:`EventHandle` objects plus
a clock.  Components capture a reference to the simulator, call
:meth:`Simulator.schedule` / :meth:`Simulator.schedule_in`, and read
:attr:`Simulator.now`.  The engine is deliberately minimal — all protocol
logic lives in the components.
"""

from __future__ import annotations

import heapq
import time as _time
from typing import Any, Callable, Optional

from repro.sim.errors import (
    DeadlineExceededError,
    LivelockError,
    ScheduleInPastError,
    SimulationError,
)
from repro.sim.events import EventHandle
from repro.sim.profile import SimProfile, SimStats, build_stats
from repro.sim.rng import RngRegistry

#: How many dispatched events pass between wall-clock deadline checks.
#: ``time.monotonic`` costs ~50 ns, an event dispatch ~1 µs, so checking
#: every event would be measurable; every 256th is free and still bounds
#: the overshoot to well under a millisecond of wall time.
_DEADLINE_CHECK_INTERVAL = 256


class Simulator:
    """Heap-based discrete-event scheduler with a seeded RNG registry.

    Args:
        seed: Master seed for the per-component RNG streams.
        profile: Collect per-label-group event counts, callback wall
            time, and the heap high-water mark (see
            :mod:`repro.sim.profile`); read the report from
            :attr:`stats`.  Off by default — profiling adds a
            ``perf_counter`` pair around every dispatch.

    Attributes:
        now: Current simulation time in seconds.
        rng: The :class:`RngRegistry` for this run.
    """

    def __init__(self, seed: int = 0, profile: bool = False) -> None:
        self.now: float = 0.0
        self.rng = RngRegistry(seed)
        # Heap entries are (time, seq, handle) tuples: tuple comparison is
        # C-level, which measurably beats rich comparison on EventHandle.
        self._heap: list[tuple[float, int, EventHandle]] = []
        self._seq = 0
        self._dispatched = 0
        self._running = False
        self._profile: SimProfile | None = SimProfile() if profile else None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, time: float, callback: Callable[[], Any], label: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time``.

        Returns:
            A cancellable :class:`EventHandle`.

        Raises:
            ScheduleInPastError: if ``time`` is before the current clock.
        """
        if time < self.now:
            raise ScheduleInPastError(time, self.now)
        handle = EventHandle(time, self._seq, callback, label)
        heapq.heappush(self._heap, (time, self._seq, handle))
        self._seq += 1
        profile = self._profile
        if profile is not None and len(self._heap) > profile.heap_high_water:
            profile.heap_high_water = len(self._heap)
        return handle

    def schedule_in(
        self, delay: float, callback: Callable[[], Any], label: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` ``delay`` seconds from now (``delay >= 0``)."""
        if delay < 0:
            raise ScheduleInPastError(self.now + delay, self.now)
        return self.schedule(self.now + delay, callback, label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        deadline: Optional[float] = None,
        livelock_threshold: Optional[int] = None,
    ) -> None:
        """Dispatch events in time order.

        Args:
            until: Stop once the clock would pass this time; the clock is
                left exactly at ``until``.  ``None`` runs until the event
                queue drains.
            max_events: Safety valve — abort with :class:`SimulationError`
                after dispatching this many events (catches accidental
                infinite event loops in tests).
            deadline: Wall-clock watchdog — abort with
                :class:`DeadlineExceededError` once this many real seconds
                have elapsed since the call started (checked every
                ``_DEADLINE_CHECK_INTERVAL`` events, so very cheap).
            livelock_threshold: Livelock watchdog — abort with
                :class:`LivelockError` after this many consecutive events
                dispatched without the clock advancing (a zero-delay event
                loop; legitimate same-instant bursts are orders of
                magnitude smaller than a sensible threshold).
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        if livelock_threshold is not None and livelock_threshold <= 0:
            raise ValueError(
                f"livelock_threshold must be positive, got {livelock_threshold}"
            )
        self._running = True
        started_wall = _time.monotonic() if deadline is not None else 0.0
        stalled = 0
        try:
            heap = self._heap
            pop = heapq.heappop
            # Hoisted: the detached-profiling cost inside the loop is one
            # local-variable None check per event.
            profile = self._profile
            while heap:
                head_time, _, head = heap[0]
                if head.callback is None:  # lazily-deleted (cancelled) event
                    pop(heap)
                    continue
                if until is not None and head_time > until:
                    break
                pop(heap)
                if livelock_threshold is not None:
                    if head_time > self.now:
                        stalled = 0
                    else:
                        stalled += 1
                        if stalled >= livelock_threshold:
                            raise LivelockError(head_time, stalled)
                self.now = head_time
                callback = head.callback
                head.callback = None  # mark dispatched
                if profile is None:
                    callback()
                else:
                    started = _time.perf_counter()
                    callback()
                    profile.record(
                        head.label, _time.perf_counter() - started
                    )
                self._dispatched += 1
                if max_events is not None and self._dispatched >= max_events:
                    raise SimulationError(
                        f"event budget exhausted ({max_events} events)"
                    )
                if (
                    deadline is not None
                    and self._dispatched % _DEADLINE_CHECK_INTERVAL == 0
                    and _time.monotonic() - started_wall > deadline
                ):
                    raise DeadlineExceededError(
                        deadline, self.now, self._dispatched
                    )
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Dispatch the single next pending event.

        Returns:
            True if an event was dispatched, False if the queue is empty.
        """
        heap = self._heap
        profile = self._profile
        while heap:
            head_time, _, head = heapq.heappop(heap)
            if head.callback is None:
                continue
            self.now = head_time
            callback = head.callback
            head.callback = None
            if profile is None:
                callback()
            else:
                started = _time.perf_counter()
                callback()
                profile.record(head.label, _time.perf_counter() - started)
            self._dispatched += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for _, _, event in self._heap if event.callback is not None)

    @property
    def dispatched_events(self) -> int:
        """Total number of events dispatched so far."""
        return self._dispatched

    @property
    def stats(self) -> SimStats:
        """Dispatch counters plus, under ``profile=True``, the per-group
        event/wall-time breakdown and heap high-water mark."""
        return build_stats(self._dispatched, self.pending_events, self._profile)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty.

        Pops lazily-deleted (cancelled) heads on the way — the heap root
        is already the minimum, so no sort is ever needed, and discarded
        entries don't have to be skipped again by the next caller.
        """
        heap = self._heap
        while heap:
            if heap[0][2].callback is not None:
                return heap[0][0]
            heapq.heappop(heap)
        return None

    def __repr__(self) -> str:
        return (
            f"<Simulator t={self.now:.6f} pending={self.pending_events} "
            f"dispatched={self._dispatched}>"
        )

"""Event handles used by the simulation scheduler.

An :class:`EventHandle` is what :meth:`repro.sim.Simulator.schedule` returns.
It is a mutable record living in the engine's heap; cancellation simply
clears the callback so the engine skips the entry when it pops it (lazy
deletion — O(1) cancel, no heap surgery).  Cancellation also notifies the
owning simulator so its live-event counter stays O(1) to read.

Fire-and-forget events posted with :meth:`repro.sim.Simulator.post` have
no handle at all — the engine stores the bare callable in the heap entry,
so the per-event cost of the packet hot path is one tuple, not a tuple
plus a handle object.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


class EventHandle:
    """A scheduled callback, cancellable until it fires.

    Attributes:
        time: Absolute simulation time at which the event fires.
        seq: Tie-breaker; events with equal ``time`` fire in schedule order.
        callback: Zero-argument callable, or ``None`` once cancelled/fired.
        label: Optional human-readable tag for tracing and debugging.
    """

    __slots__ = ("time", "seq", "callback", "label", "_owner")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Optional[Callable[..., Any]],
        label: str = "",
        owner: Any = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.label = label
        # The owning Simulator (or None for detached handles in tests);
        # cancel() decrements its O(1) live-event counter.
        self._owner = owner

    @property
    def cancelled(self) -> bool:
        """True once the event has been cancelled or already dispatched."""
        return self.callback is None

    def cancel(self) -> None:
        """Cancel the event; harmless if already cancelled or fired."""
        if self.callback is not None:
            self.callback = None
            owner = self._owner
            if owner is not None:
                owner._live -= 1

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        tag = f" {self.label!r}" if self.label else ""
        return f"<EventHandle t={self.time:.6f} seq={self.seq}{tag} {state}>"

"""Simulator profiling: where the events — and the wall time — go.

Enabled with ``Simulator(profile=True)``; :attr:`Simulator.stats` then
reports per-component event counts and wall time plus the live-event
high-water mark.  Components are identified by *label groups*: event
labels like ``"pr timer f1 s23"`` or ``"tx src->p0m0"`` are collapsed by
dropping digit-bearing tokens (``"pr timer"``, ``"tx"``), so the report
stays a handful of rows no matter how many flows or links a scenario
has.

When profiling is off (the default) the engine's hot loop pays one
``is not None`` check per event dispatch and nothing else — the
zero-cost-when-detached contract shared with :mod:`repro.obs`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

#: Group used for events scheduled without a label.
UNLABELED = "(unlabeled)"


def group_label(label: str) -> str:
    """Collapse an event label to its component group.

    Tokens containing digits are per-instance identifiers (flow ids,
    sequence numbers, node names like ``p0m0``) and are dropped; what
    remains names the component.
    """
    tokens = [
        token for token in label.split() if not any(ch.isdigit() for ch in token)
    ]
    return " ".join(tokens) if tokens else UNLABELED


class SimProfile:
    """Mutable per-run accumulator (internal to the engine)."""

    __slots__ = ("event_counts", "wall_time", "heap_high_water", "_group_cache")

    def __init__(self) -> None:
        #: group -> dispatched-event count.
        self.event_counts: Dict[str, int] = {}
        #: group -> wall-clock seconds spent inside callbacks.
        self.wall_time: Dict[str, float] = {}
        #: Largest number of *live* pending events ever observed — fed by
        #: the engine's O(1) live counter, so lazily-deleted (cancelled)
        #: heap entries no longer inflate it.
        self.heap_high_water = 0
        self._group_cache: Dict[str, str] = {}

    def record(self, label: str, elapsed: float) -> None:
        group = self._group_cache.get(label)
        if group is None:
            group = group_label(label)
            self._group_cache[label] = group
        self.event_counts[group] = self.event_counts.get(group, 0) + 1
        self.wall_time[group] = self.wall_time.get(group, 0.0) + elapsed


@dataclass(frozen=True, slots=True)
class GroupStats:
    """One label group's share of the run."""

    group: str
    events: int
    wall_time: float


@dataclass(frozen=True, slots=True)
class SimStats:
    """The :attr:`Simulator.stats` report.

    Always carries the dispatch counters; the profiling fields
    (``groups``, ``heap_high_water``) are populated only when the
    simulator was built with ``profile=True`` (``profiled`` says which).
    """

    dispatched_events: int
    pending_events: int
    profiled: bool
    heap_high_water: Optional[int] = None
    groups: Tuple[GroupStats, ...] = ()

    def group(self, name: str) -> Optional[GroupStats]:
        """The stats row for one label group, or None."""
        for entry in self.groups:
            if entry.group == name:
                return entry
        return None

    def to_record(self) -> Dict[str, Any]:
        """A ``repro.obs/v1``-style record of this report."""
        record: Dict[str, Any] = {
            "record": "sim",
            "dispatched_events": self.dispatched_events,
            "pending_events": self.pending_events,
            "profiled": self.profiled,
        }
        if self.profiled:
            record["heap_high_water"] = self.heap_high_water
            record["groups"] = [
                {
                    "group": entry.group,
                    "events": entry.events,
                    "wall_time": entry.wall_time,
                }
                for entry in self.groups
            ]
        return record

    def report(self) -> str:
        """A human-readable table (wall-time-descending)."""
        lines = [
            f"dispatched={self.dispatched_events} "
            f"pending={self.pending_events}"
        ]
        if not self.profiled:
            lines.append("(profiling disabled; pass Simulator(profile=True))")
            return "\n".join(lines)
        lines[0] += f" heap_high_water={self.heap_high_water}"
        width = max((len(entry.group) for entry in self.groups), default=5)
        lines.append(f"{'group':<{width}} {'events':>10} {'wall (ms)':>10}")
        for entry in self.groups:
            lines.append(
                f"{entry.group:<{width}} {entry.events:>10} "
                f"{entry.wall_time * 1e3:>10.2f}"
            )
        return "\n".join(lines)


def build_stats(
    dispatched: int, pending: int, profile: Optional[SimProfile]
) -> SimStats:
    """Assemble the :class:`SimStats` report from engine internals."""
    if profile is None:
        return SimStats(
            dispatched_events=dispatched, pending_events=pending, profiled=False
        )
    groups = tuple(
        GroupStats(
            group=group,
            events=profile.event_counts[group],
            wall_time=profile.wall_time.get(group, 0.0),
        )
        for group in sorted(
            profile.event_counts,
            key=lambda g: profile.wall_time.get(g, 0.0),
            reverse=True,
        )
    )
    return SimStats(
        dispatched_events=dispatched,
        pending_events=pending,
        profiled=True,
        heap_high_water=profile.heap_high_water,
        groups=groups,
    )

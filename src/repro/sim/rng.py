"""Deterministic per-component random-number streams.

Reproducibility discipline: a simulation owns a single master seed, and each
component (a lossy link, a multipath router, a traffic source) draws its own
independent :class:`random.Random` stream derived from the master seed and a
stable component name.  Adding a new random component therefore never
perturbs the streams of existing ones — runs stay comparable across code
changes, which matters when regenerating the paper's figures.
"""

from __future__ import annotations

import random
import zlib
from typing import Any, Dict, Mapping


def derive_child_seed(master_seed: int, name: str) -> int:
    """Derive a child seed from ``master_seed`` and a stable ``name``.

    The same derivation backs both the in-simulation RNG streams
    (:class:`RngRegistry`) and the sweep executor's per-cell seeds
    (:mod:`repro.exec`): a pure function of its inputs, independent of
    creation order or process boundaries, so serial and parallel runs of
    the same experiment are bit-identical.

    crc32 is a stable, platform-independent hash of the name; Python's
    built-in hash() is salted per-process and would break determinism.
    """
    return (master_seed * 0x9E3779B1 + zlib.crc32(name.encode())) % 2**63


class RngRegistry:
    """Factory of named, independently seeded ``random.Random`` streams."""

    __slots__ = ("master_seed", "_streams")

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The same (master_seed, name) pair always yields the same sequence.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        stream = random.Random(derive_child_seed(self.master_seed, name))
        self._streams[name] = stream
        return stream

    def names(self) -> list[str]:
        """Names of all streams created so far (sorted, for debugging)."""
        return sorted(self._streams)

    # ------------------------------------------------------------------
    # StatefulComponent protocol (see repro.checkpoint.state)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        """Master seed plus the exact Mersenne state of every stream."""
        return {
            "master_seed": self.master_seed,
            "streams": {
                name: stream.getstate()
                for name, stream in sorted(self._streams.items())
            },
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Rebuild every stream exactly where the snapshot left it.

        Streams absent from the snapshot are dropped: a resumed run must
        not inherit streams the snapshotted run never created.
        """
        self.master_seed = int(state["master_seed"])
        streams: Dict[str, random.Random] = {}
        for name, rng_state in state["streams"].items():
            stream = random.Random()
            stream.setstate(rng_state)
            streams[name] = stream
        self._streams = streams

#!/usr/bin/env python3
"""Persistent reordering via multipath routing: the paper's headline.

Runs a single bulk flow over Figure 5's multipath mesh (four node-disjoint
10 Mbps paths) with per-packet ε = 0 routing — every path used with equal
probability, so both data and ACK packets are persistently reordered —
once for each protocol, and shows how only TCP-PR keeps the pipe full.

This is a one-scenario miniature of Figure 6; the full sweep over ε and
link delays lives in benchmarks/test_fig6_multipath.py.

Run:
    python examples/multipath_reordering.py
"""

from repro.experiments.fig6_multipath import run_single_multipath_flow
from repro.experiments.report import bar_chart
from repro.util.units import MS

DURATION = 15.0
PROTOCOLS = ["tcp-pr", "tdfr", "ewma", "inc-by-1", "dsack-nm", "sack"]


def main() -> None:
    print("Single flow over 4 disjoint 10 Mbps paths, full multipath (eps=0),")
    print(f"10 ms links, {DURATION:.0f} s — throughput by protocol:\n")
    results = {}
    for protocol in PROTOCOLS:
        results[protocol] = run_single_multipath_flow(
            protocol, epsilon=0.0, link_delay=10 * MS, duration=DURATION
        )
    print(bar_chart(results, unit=" Mbps"))
    print()
    best_dupack = max(v for k, v in results.items() if k != "tcp-pr")
    print(f"TCP-PR achieves {results['tcp-pr']:.1f} Mbps — "
          f"{results['tcp-pr'] / best_dupack:.1f}x the best DUPACK-based variant.")
    print("Timers, not duplicate ACKs: reordering carries no congestion signal,")
    print("so TCP-PR never cuts its window for a merely-late packet.")


if __name__ == "__main__":
    main()

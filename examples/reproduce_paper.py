#!/usr/bin/env python3
"""Regenerate every figure of the paper in one run (quick scale).

Runs miniature versions of Figures 2, 3, 4, and 6 plus the Section 4
extreme-loss beta sweep, prints each reproduced table, and writes the
whole report to ``paper_reproduction_report.txt``.  Takes a few minutes;
for the full-scale versions use the benchmark suite:

    REPRO_PAPER_SCALE=1 pytest benchmarks/ --benchmark-only

Run:
    python examples/reproduce_paper.py [output_path]
"""

import sys
import time

from repro.exec.spec import Scale
from repro.experiments.fig2_fairness import Fig2Spec, format_fig2, run_fig2
from repro.experiments.fig3_cov import Fig3Spec, format_fig3, run_fig3
from repro.experiments.fig4_params import (
    BetaSweepSpec,
    Fig4Spec,
    format_beta_sweep,
    format_fig4,
    run_extreme_loss_beta_sweep,
    run_fig4,
)
from repro.experiments.fig6_multipath import Fig6Spec, format_fig6, run_fig6
from repro.util.units import MS


def main() -> None:
    output_path = sys.argv[1] if len(sys.argv) > 1 else "paper_reproduction_report.txt"
    sections = []
    started = time.time()

    def section(title, body):
        stamp = time.time() - started
        block = f"[{stamp:7.1f}s] {title}\n{body}\n"
        print(block)
        sections.append(block)

    section(
        "Figure 2 (dumbbell)",
        format_fig2(run_fig2(Fig2Spec.presets(
            Scale.QUICK, topology="dumbbell", flow_counts=(4, 8)
        ))),
    )
    section(
        "Figure 2 (parking lot)",
        format_fig2(run_fig2(Fig2Spec.presets(
            Scale.QUICK, topology="parking-lot", flow_counts=(4, 8)
        ))),
    )
    section(
        "Figure 3 (dumbbell)",
        format_fig3(run_fig3(Fig3Spec.presets(
            Scale.QUICK, topology="dumbbell"
        ))),
    )
    section(
        "Figure 4 (alpha/beta surface)",
        format_fig4(run_fig4(Fig4Spec.presets(
            Scale.QUICK, alphas=(0.995,), betas=(1.0, 3.0)
        ))),
    )
    section(
        "Section 4 extreme-loss beta sweep",
        format_beta_sweep(run_extreme_loss_beta_sweep(BetaSweepSpec.presets(
            Scale.QUICK, betas=(3.0, 10.0)
        ))),
    )
    section(
        "Figure 6 (10 ms)",
        format_fig6(run_fig6(Fig6Spec.presets(
            Scale.QUICK, link_delay=10 * MS, epsilons=(0.0, 4.0, 500.0),
            duration=15.0,
        ))),
    )
    section(
        "Figure 6 (60 ms)",
        format_fig6(run_fig6(Fig6Spec.presets(
            Scale.QUICK, link_delay=60 * MS, epsilons=(0.0, 4.0, 500.0),
            duration=15.0,
        ))),
    )

    with open(output_path, "w") as handle:
        handle.write(
            "Quick-scale reproduction of 'TCP-PR: TCP for Persistent Packet "
            "Reordering' (ICDCS 2003)\nSee EXPERIMENTS.md for the "
            "paper-vs-measured discussion.\n\n"
        )
        handle.write("\n".join(sections))
    print(f"full report written to {output_path}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Wireless-style bursty loss (the paper's stated future work).

"While the protocol described in this paper focuses on wired networks,
we plan to adapt it for wireless environments" — this example probes
that direction with a Gilbert-Elliott two-state channel: mostly clean,
but with occasional multi-packet fades.  Fades are *not* congestion, yet
every TCP variant (including TCP-PR) reads loss as congestion; the
interesting question is how gracefully each recovers from a burst.

Run:
    python examples/wireless_fades.py
"""

from repro import BulkTransfer, Network
from repro.net.lossgen import GilbertElliottLoss
from repro.net.network import install_static_routes
from repro.core.pr import PrConfig
from repro.tcp.base import TcpConfig
from repro.experiments.report import bar_chart
from repro.util.units import MBPS

DURATION = 30.0
PROTOCOLS = ["tcp-pr", "sack", "newreno", "tdfr"]


def run_variant(variant: str) -> tuple[float, int]:
    net = Network(seed=21)
    channel = GilbertElliottLoss(
        net.sim.rng.stream("fades"),
        good_to_bad=0.001,   # a fade starts every ~1000 packets
        bad_to_good=0.25,    # mean fade length: 4 packets
        bad_loss=1.0,        # fades drop everything
    )
    net.add_nodes("base", "mobile")
    net.add_duplex_link(
        "base", "mobile", bandwidth=5 * MBPS, delay=0.02, queue=100,
        loss_model=channel,
    )
    install_static_routes(net)
    flow = BulkTransfer(
        net, variant, "base", "mobile", flow_id=1,
        tcp_config=TcpConfig(initial_ssthresh=64),
        pr_config=PrConfig(initial_ssthresh=64),
    )
    net.run(until=DURATION)
    mbps = flow.delivered_bytes() * 8 / DURATION / 1e6
    return mbps, channel.bad_entries


def main() -> None:
    print("Gilbert-Elliott channel on a 5 Mbps wireless hop: fades of ~4")
    print(f"packets starting every ~1000 packets, {DURATION:.0f} s runs\n")
    throughputs = {}
    for variant in PROTOCOLS:
        mbps, fades = run_variant(variant)
        throughputs[variant] = mbps
        print(f"  {variant:>7}: {mbps:5.2f} Mbps  ({fades} fades endured)")
    print()
    print(bar_chart(throughputs, unit=" Mbps"))
    print("\nA 4-packet fade is a loss *burst*: NewReno retransmits one")
    print("hole per RTT, SACK repairs it in one round, and TCP-PR's")
    print("memorize list bounds the response to a single window cut.")


if __name__ == "__main__":
    main()

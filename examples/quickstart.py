#!/usr/bin/env python3
"""Quickstart: a single TCP-PR flow over one bottleneck link.

Builds the smallest possible scenario — two hosts, one router pair, one
bottleneck — runs a TCP-PR bulk transfer for ten seconds, and prints the
throughput plus the sender's internal statistics, so you can see the
timer-based machinery (ewrtt/mxrtt, window cuts) at work.

Run:
    python examples/quickstart.py
"""

from repro import BulkTransfer, DumbbellSpec, build_dumbbell
from repro.obs import CwndMonitor
from repro.util.units import MBPS, fmt_bandwidth, fmt_time

DURATION = 10.0


def main() -> None:
    # A 10 Mbps / 10 ms bottleneck with one sender/receiver pair.
    spec = DumbbellSpec(
        num_pairs=1,
        bottleneck_bandwidth=10 * MBPS,
        bottleneck_delay=0.010,
        seed=42,
    )
    net = build_dumbbell(spec)

    flow = BulkTransfer(net, "tcp-pr", "s0", "d0", flow_id=1)
    cwnd_monitor = CwndMonitor(net.sim, flow.sender, interval=0.1)

    net.run(until=DURATION)

    sender = flow.sender
    print("TCP-PR quickstart")
    print(f"  simulated time     : {DURATION:.0f} s")
    print(f"  bottleneck         : {fmt_bandwidth(spec.bottleneck_bandwidth)}, "
          f"{fmt_time(spec.bottleneck_delay)} one-way")
    print(f"  segments delivered : {flow.delivered_segments}")
    print(f"  goodput            : {fmt_bandwidth(flow.throughput_bps(DURATION))}")
    print(f"  utilization        : "
          f"{flow.throughput_bps(DURATION) / spec.bottleneck_bandwidth:.1%}")
    print("sender state")
    print(f"  cwnd               : {sender.cwnd:.1f} segments "
          f"(peak {cwnd_monitor.max_cwnd():.0f})")
    print(f"  mode               : {sender.mode}")
    print(f"  ewrtt / mxrtt      : {fmt_time(sender.ewrtt)} / {fmt_time(sender.mxrtt)}")
    print(f"  drops detected     : {sender.stats.drops_detected}")
    print(f"  window cuts        : {sender.stats.window_cuts}")
    print(f"  retransmissions    : {sender.stats.retransmits}")
    print(f"  extreme-loss events: {sender.stats.extreme_events}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Route flapping (the MANET motivation of Section 1).

In mobile ad-hoc networks, routing protocols recompute routes frequently;
traffic oscillates between paths with different round-trip times and
arrives persistently reordered.  This example models that directly: a
flow between two nodes whose active route flips every 200 ms between a
fast 2-hop path and a slow 3-hop path, and compares how each TCP variant
copes.

Run:
    python examples/manet_route_flap.py
"""

from repro import RouteFlapper, TcpReceiver, make_sender
from repro.analysis.reordering import reordering_ratio
from repro.experiments.report import bar_chart
from repro.net.network import Network, install_static_routes
from repro.obs import PacketTracer
from repro.util.units import MBPS

DURATION = 20.0
FLAP_PERIOD = 0.2
PROTOCOLS = ["tcp-pr", "tdfr", "ewma", "sack"]


def build_flapping_network(seed: int) -> Network:
    """Two disjoint paths: snd-a-rcv (fast) and snd-b-c-rcv (slow)."""
    net = Network(seed=seed)
    net.add_nodes("snd", "rcv", "a", "b", "c")
    for u, v in (("snd", "a"), ("a", "rcv"), ("snd", "b"), ("b", "c"), ("c", "rcv")):
        net.add_duplex_link(u, v, bandwidth=5 * MBPS, delay=0.015, queue=200)
    install_static_routes(net)
    return net


def run_variant(variant: str) -> tuple[float, float]:
    net = build_flapping_network(seed=11)
    RouteFlapper(net, "snd", "rcv", period=FLAP_PERIOD, jitter=0.2).install()
    tracer = PacketTracer()
    tracer.watch_node(net.node("rcv"))
    sender = make_sender(variant, net.sim, net.node("snd"), 1, "rcv")
    receiver = TcpReceiver(net.sim, net.node("rcv"), 1, "snd")
    sender.start(0.0)
    net.run(until=DURATION)
    mbps = receiver.delivered * 8000 / DURATION / 1e6
    ratio = reordering_ratio(tracer.arrival_seqs(1))
    return mbps, ratio


def main() -> None:
    print(f"Route flap every {FLAP_PERIOD * 1e3:.0f} ms between a 30 ms-RTT and a "
          f"45 ms-RTT path ({DURATION:.0f} s runs)\n")
    throughputs = {}
    for variant in PROTOCOLS:
        mbps, reorder = run_variant(variant)
        throughputs[variant] = mbps
        print(f"  {variant:>7}: {mbps:5.2f} Mbps   "
              f"(reordered arrivals: {reorder:.1%})")
    print()
    print(bar_chart(throughputs, unit=" Mbps"))
    print("\nEvery route change strands in-flight packets on the old path;")
    print("DUPACK-based senders read the resulting reordering as loss.")


if __name__ == "__main__":
    main()

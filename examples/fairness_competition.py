#!/usr/bin/env python3
"""Fairness: TCP-PR and TCP-SACK sharing one bottleneck (Section 4).

Runs four TCP-PR flows against four TCP-SACK flows through a dumbbell
bottleneck, measures each flow's goodput over the final window, and
prints the paper's fairness metrics: per-flow normalized throughput,
per-protocol mean normalized throughput (≈ 1 means a fair share), the
coefficient of variation, and Jain's index.

Run:
    python examples/fairness_competition.py
"""

from repro.analysis.fairness import jain_index
from repro.experiments.runner import build_fairness_scenario, run_fairness_scenario

DURATION = 40.0
MEASURE_WINDOW = 30.0
TOTAL_FLOWS = 8


def main() -> None:
    scenario = build_fairness_scenario(
        topology="dumbbell", total_flows=TOTAL_FLOWS, seed=7
    )
    result = run_fairness_scenario(scenario, DURATION, MEASURE_WINDOW)

    print(f"{TOTAL_FLOWS // 2} TCP-PR vs {TOTAL_FLOWS // 2} TCP-SACK flows, "
          f"15 Mbps dumbbell, last {MEASURE_WINDOW:.0f} s of {DURATION:.0f} s\n")
    print(f"{'flow':>6} {'protocol':>9} {'Mbps':>7} {'normalized':>11}")
    for protocol, values in result.throughputs.items():
        for i, (mbps, norm) in enumerate(
            zip(values, result.normalized[protocol])
        ):
            print(f"{i:>6} {protocol:>9} {mbps / 1e6:>7.2f} {norm:>11.3f}")

    print("\nsummary")
    for protocol in result.mean_normalized:
        print(f"  {protocol:>7}: mean normalized throughput = "
              f"{result.mean_normalized[protocol]:.3f}, "
              f"CoV = {result.cov[protocol]:.3f}")
    all_values = [t for values in result.throughputs.values() for t in values]
    print(f"  Jain index over all flows = {jain_index(all_values):.3f}")
    print(f"  bottleneck loss rate      = {result.loss_rate:.2%}")
    print("\nA mean normalized throughput of 1.0 for both protocols means")
    print("TCP-PR competes fairly with TCP-SACK (Figure 2's finding).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""TCP-PR's extreme-loss mode (Section 3.2) under a link blackout.

A flow runs normally for two seconds, then the link blacks out (100 %
loss) for three seconds, then heals.  The example traces TCP-PR's
response: the cburst counter crossing cwnd/2 + 1 triggers the coarse
timeout emulation — cwnd collapses to 1, slow-start mode, mxrtt inflated
to ≥ 1 s and doubled on every failed retransmission round — and then the
flow recovers when the link returns.

Run:
    python examples/extreme_loss_backoff.py
"""

from repro import BulkTransfer, Network
from repro.net.lossgen import LossModel
from repro.net.network import install_static_routes
from repro.util.units import MBPS, fmt_time

BLACKOUT_START = 2.0
BLACKOUT_END = 5.0
DURATION = 20.0


class Blackout(LossModel):
    """Drops everything inside the blackout window."""

    def __init__(self, sim):
        self.sim = sim

    def should_drop(self, packet):
        return BLACKOUT_START <= self.sim.now < BLACKOUT_END


def main() -> None:
    net = Network(seed=3)
    net.add_nodes("snd", "rcv")
    net.add_duplex_link(
        "snd", "rcv", bandwidth=5 * MBPS, delay=0.02,
        loss_model=Blackout(net.sim),
    )
    install_static_routes(net)
    flow = BulkTransfer(net, "tcp-pr", "snd", "rcv", flow_id=1)
    sender = flow.sender

    print(f"5 Mbps link; blackout from t={BLACKOUT_START:.0f}s to "
          f"t={BLACKOUT_END:.0f}s\n")
    print(f"{'t':>5} {'cwnd':>7} {'mode':>11} {'mxrtt':>9} {'delivered':>10} "
          f"{'extreme':>8} {'doublings':>10}")

    def report():
        print(f"{net.sim.now:>5.1f} {sender.cwnd:>7.1f} {sender.mode:>11} "
              f"{fmt_time(sender.mxrtt):>9} {flow.delivered_segments:>10} "
              f"{sender.stats.extreme_events:>8} "
              f"{sender.stats.backoff_doublings:>10}")
        if net.sim.now < DURATION - 0.5:
            net.sim.schedule_in(1.0, report)

    net.sim.schedule(0.5, report)
    net.run(until=DURATION)

    print("\nfinal counters")
    stats = sender.stats
    print(f"  drops detected : {stats.drops_detected}")
    print(f"  window cuts    : {stats.window_cuts}")
    print(f"  extreme events : {stats.extreme_events}")
    print(f"  mxrtt doublings: {stats.backoff_doublings}")
    print(f"  delivered      : {flow.delivered_segments} segments")
    print("\nDuring the blackout the memorize list absorbs the flood of")
    print("expired timers (one coarse response, not hundreds), and the")
    print("doubling of mxrtt emulates standard TCP's exponential backoff;")
    print("the first ACK after healing snaps mxrtt back to beta * ewrtt.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Link failures and path blackouts: TCP-PR vs NewReno (robustness demo).

The paper's Section 1 scenarios — route changes, link-layer retransmission,
wireless handoff — all involve paths that don't just reorder packets but
occasionally *disappear*.  This example builds the Figure 5 four-path mesh
with full per-packet multipath (ε = 0) and injects a declarative
:class:`~repro.faults.FaultSchedule` against the shortest path:

* ``t = 5 s``:  path 0 blacks out for 2 s (the router withdraws the
  route) while its first-hop link goes down, flushing packets in flight,
  and the reverse hop drops every ACK;
* ``t = 7 s``:  the link returns with a 3× delay spike for 1 s (the
  post-rerouting RTT jump);
* ``t = 12 s``: a second, shorter outage of 1 s.

A :class:`~repro.obs.FaultTimelineMonitor` records each applied event,
and both protocols run the *same* schedule (same seeds, same topology).
TCP-PR loses roughly the capacity the faults removed; NewReno's
DUPACK-based recovery compounds the reordering penalty it already pays.

Run:
    python examples/link_failures.py
"""

from repro.app.bulk import BulkTransfer
from repro.core.pr import PrConfig
from repro.faults import (
    AckLoss,
    DelaySpike,
    FaultSchedule,
    Injector,
    LinkDown,
    LinkUp,
    PathBlackout,
)
from repro.tcp.base import TcpConfig
from repro.topologies.multipath_mesh import (
    MultipathMeshSpec,
    build_multipath_mesh,
    install_epsilon_routing,
)
from repro.obs import FaultTimelineMonitor
from repro.util.units import MBPS, MS

DURATION = 20.0
SEED = 11
INITIAL_SSTHRESH = 128.0


def build_schedule() -> FaultSchedule:
    """Two compound outages against path 0 (src → p0m0 → dst)."""
    return FaultSchedule(
        [
            # First outage: 2 s at t = 5.
            PathBlackout(time=5.0, duration=2.0, origin="src", dst="dst",
                         path_index=0),
            LinkDown(time=5.0, src="src", dst="p0m0", flush=True),
            AckLoss(time=5.0, duration=2.0, src="p0m0", dst="src", rate=1.0),
            LinkUp(time=7.0, src="src", dst="p0m0"),
            DelaySpike(time=7.0, duration=1.0, src="src", dst="p0m0",
                       factor=3.0),
            # Second, shorter outage: 1 s at t = 12.
            PathBlackout(time=12.0, duration=1.0, origin="src", dst="dst",
                         path_index=0),
            LinkDown(time=12.0, src="src", dst="p0m0", flush=True),
            LinkUp(time=13.0, src="src", dst="p0m0"),
        ]
    )


def run_flow(protocol: str) -> float:
    """One flow under the fault schedule; returns goodput in Mbps."""
    net = build_multipath_mesh(MultipathMeshSpec(link_delay=10 * MS, seed=SEED))
    install_epsilon_routing(net, epsilon=0.0)
    monitor = FaultTimelineMonitor()
    Injector(net, build_schedule(), monitor=monitor).arm()
    flow = BulkTransfer(
        net,
        protocol,
        "src",
        "dst",
        flow_id=1,
        tcp_config=TcpConfig(initial_ssthresh=INITIAL_SSTHRESH),
        pr_config=PrConfig(initial_ssthresh=INITIAL_SSTHRESH),
    )
    net.run(until=DURATION, livelock_threshold=1_000_000)
    if protocol == "tcp-pr":  # identical timeline for both; print it once
        print("Fault timeline (as applied):")
        print(monitor.timeline())
        print()
    return flow.delivered_bytes() * 8.0 / DURATION / MBPS


def main() -> None:
    print("Figure 5 mesh, four 10 Mbps paths, epsilon = 0 (full per-packet")
    print("multipath); path 0 suffers two compound outages.\n")
    goodputs = {protocol: run_flow(protocol) for protocol in ("tcp-pr", "newreno")}

    print(f"{'protocol':>9} {'goodput':>9}")
    for protocol, mbps in goodputs.items():
        print(f"{protocol:>9} {mbps:>7.2f} Mbps")

    print("\nTCP-PR's timer-driven loss detection treats the post-outage")
    print("reordering burst as reordering and keeps its window; NewReno's")
    print("DUPACK logic reads it as repeated loss and collapses.")


if __name__ == "__main__":
    main()

"""Tests for the repro-experiments CLI."""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_variants_listing(capsys):
    assert main(["variants"]) == 0
    out = capsys.readouterr().out
    assert "tcp-pr" in out
    assert "tdfr" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["figure-nine"])


def test_fig2_tiny_run(capsys):
    assert main(["fig2", "--flows", "2", "--seed", "1", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "dumbbell" in out


def test_fig6_tiny_run(capsys):
    assert main(["fig6", "--epsilons", "500", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out
    assert "tcp-pr" in out


def test_compare_tiny_run(capsys):
    assert main([
        "compare", "--variants", "tcp-pr", "--epsilon", "500", "--no-cache",
    ]) == 0
    out = capsys.readouterr().out
    assert "tcp-pr" in out
    assert "Mbps" in out


def test_fig6_topology_choice_validated():
    with pytest.raises(SystemExit):
        main(["fig2", "--topology", "ring"])


# ----------------------------------------------------------------------
# Executor flags: --jobs / --no-cache / --cache-dir / --json
# ----------------------------------------------------------------------
def _fig4_tiny(*extra):
    return [
        "fig4", "--alphas", "0.995", "--betas", "3", "--flows", "4",
        "--duration", "6", "--window", "4", *extra,
    ]


def test_fig6_parallel_matches_serial(capsys):
    argv = [
        "fig6", "--protocols", "tcp-pr", "--epsilons", "0", "500",
        "--duration", "2", "--no-cache",
    ]
    assert main([*argv, "--jobs", "1"]) == 0
    serial_out = capsys.readouterr().out
    assert main([*argv, "--jobs", "2"]) == 0
    parallel_out = capsys.readouterr().out
    assert serial_out == parallel_out


def test_fig4_cache_round_trip(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(_fig4_tiny("--cache-dir", cache_dir)) == 0
    cold_out = capsys.readouterr().out
    entries = list((tmp_path / "cache").rglob("*.json"))
    assert entries, "the run must populate the cache"

    assert main(_fig4_tiny("--cache-dir", cache_dir)) == 0
    warm_out = capsys.readouterr().out
    assert warm_out == cold_out


def test_no_cache_leaves_no_cache_dir(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    assert main(_fig4_tiny("--no-cache", "--cache-dir", str(cache_dir))) == 0
    capsys.readouterr()
    assert not cache_dir.exists()


def test_fig6_json_dump(tmp_path, capsys):
    out_path = tmp_path / "fig6.json"
    assert main([
        "fig6", "--protocols", "tcp-pr", "--epsilons", "500",
        "--duration", "2", "--no-cache", "--json", str(out_path),
    ]) == 0
    out = capsys.readouterr().out
    assert str(out_path) in out
    data = json.loads(out_path.read_text())
    assert "tcp-pr" in data["throughput_mbps"]
    assert "500.0" in data["throughput_mbps"]["tcp-pr"]


def test_variants_json_dump(tmp_path, capsys):
    out_path = tmp_path / "variants.json"
    assert main(["variants", "--json", str(out_path)]) == 0
    capsys.readouterr()
    data = json.loads(out_path.read_text())
    assert "tcp-pr" in data["variants"]


def test_compare_json_dump(tmp_path, capsys):
    out_path = tmp_path / "compare.json"
    assert main([
        "compare", "--variants", "tcp-pr", "--epsilon", "500",
        "--duration", "2", "--no-cache", "--json", str(out_path),
    ]) == 0
    capsys.readouterr()
    data = json.loads(out_path.read_text())
    assert data["epsilon"] == 500.0
    assert data["throughput_mbps"]["tcp-pr"] > 0


def test_every_subcommand_exposes_executor_flags():
    parser = build_parser()
    for command in ("variants", "fig2", "fig3", "fig4", "fig6", "fig7",
                    "compare"):
        args = parser.parse_args([
            command, "--jobs", "3", "--no-cache", "--cache-dir", "/tmp/x",
        ])
        assert args.jobs == 3
        assert args.no_cache
        assert args.cache_dir == "/tmp/x"
        assert args.json is None
        assert args.keep_going is False
        assert args.cell_timeout is None
        assert args.retries == 0


# ----------------------------------------------------------------------
# Failure-policy flags: --keep-going / --fail-fast / --cell-timeout
# ----------------------------------------------------------------------
def _fig7_tiny(*extra):
    return [
        "fig7", "--protocols", "tcp-pr", "--outages", "0", "2",
        "--duration", "8", "--period", "4", *extra,
    ]


def test_fig7_tiny_run(capsys):
    assert main(_fig7_tiny("--no-cache")) == 0
    out = capsys.readouterr().out
    assert "Figure 7" in out
    assert "tcp-pr" in out


def test_fig7_cache_round_trip(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(_fig7_tiny("--cache-dir", cache_dir)) == 0
    cold_out = capsys.readouterr().out
    assert list((tmp_path / "cache").rglob("*.json"))
    assert main(_fig7_tiny("--cache-dir", cache_dir)) == 0
    assert capsys.readouterr().out == cold_out


def test_keep_going_and_fail_fast_are_exclusive():
    with pytest.raises(SystemExit):
        build_parser().parse_args(
            ["fig7", "--keep-going", "--fail-fast"]
        )


def test_fig7_keep_going_reports_partial_result(capsys):
    argv = [
        "fig7", "--protocols", "tcp-pr", "nosuch", "--outages", "0",
        "--duration", "4", "--period", "2", "--no-cache", "--keep-going",
    ]
    assert main(argv) == 1  # partial => nonzero exit
    out = capsys.readouterr().out
    assert "Figure 7" in out  # the surviving cells still render
    assert "--" in out  # the failed cell shows as a hole
    assert "cells failed" in out


def test_fig7_fail_fast_aborts_with_error_listing(capsys):
    argv = [
        "fig7", "--protocols", "nosuch", "--outages", "0",
        "--duration", "4", "--period", "2", "--no-cache",
    ]
    assert main(argv) == 1
    captured = capsys.readouterr()
    assert "sweep failed" in captured.err
    assert "Figure 7" not in captured.out


def test_keep_going_json_dump_includes_failures(tmp_path, capsys):
    out_path = tmp_path / "fig7.json"
    argv = [
        "fig7", "--protocols", "tcp-pr", "nosuch", "--outages", "0",
        "--duration", "4", "--period", "2", "--no-cache", "--keep-going",
        "--json", str(out_path),
    ]
    assert main(argv) == 1
    capsys.readouterr()
    data = json.loads(out_path.read_text())
    assert data["goodput_mbps"]["tcp-pr"]["0.0"] > 0
    assert data["goodput_mbps"]["nosuch"]["0.0"] is None
    assert any(key.startswith("nosuch") for key in data["failures"])

"""Tests for the repro-experiments CLI."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_variants_listing(capsys):
    assert main(["variants"]) == 0
    out = capsys.readouterr().out
    assert "tcp-pr" in out
    assert "tdfr" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["figure-nine"])


def test_fig2_tiny_run(capsys):
    assert main(["fig2", "--flows", "2", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "dumbbell" in out


def test_fig6_tiny_run(capsys):
    assert main(["fig6", "--epsilons", "500"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out
    assert "tcp-pr" in out


def test_compare_tiny_run(capsys):
    assert main([
        "compare", "--variants", "tcp-pr", "--epsilon", "500",
    ]) == 0
    out = capsys.readouterr().out
    assert "tcp-pr" in out
    assert "Mbps" in out


def test_fig6_topology_choice_validated():
    with pytest.raises(SystemExit):
        main(["fig2", "--topology", "ring"])

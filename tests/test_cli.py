"""Tests for the repro-experiments CLI."""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_variants_listing(capsys):
    assert main(["variants"]) == 0
    out = capsys.readouterr().out
    assert "tcp-pr" in out
    assert "tdfr" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["figure-nine"])


def test_fig2_tiny_run(capsys):
    assert main(["fig2", "--flows", "2", "--seed", "1", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "dumbbell" in out


def test_fig6_tiny_run(capsys):
    assert main(["fig6", "--epsilons", "500", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out
    assert "tcp-pr" in out


def test_compare_tiny_run(capsys):
    assert main([
        "compare", "--variants", "tcp-pr", "--epsilon", "500", "--no-cache",
    ]) == 0
    out = capsys.readouterr().out
    assert "tcp-pr" in out
    assert "Mbps" in out


def test_fig6_topology_choice_validated():
    with pytest.raises(SystemExit):
        main(["fig2", "--topology", "ring"])


# ----------------------------------------------------------------------
# Executor flags: --jobs / --no-cache / --cache-dir / --json
# ----------------------------------------------------------------------
def _fig4_tiny(*extra):
    return [
        "fig4", "--alphas", "0.995", "--betas", "3", "--flows", "4",
        "--duration", "6", "--window", "4", *extra,
    ]


def test_fig6_parallel_matches_serial(capsys):
    argv = [
        "fig6", "--protocols", "tcp-pr", "--epsilons", "0", "500",
        "--duration", "2", "--no-cache",
    ]
    assert main([*argv, "--jobs", "1"]) == 0
    serial_out = capsys.readouterr().out
    assert main([*argv, "--jobs", "2"]) == 0
    parallel_out = capsys.readouterr().out
    assert serial_out == parallel_out


def test_fig4_cache_round_trip(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(_fig4_tiny("--cache-dir", cache_dir)) == 0
    cold_out = capsys.readouterr().out
    entries = list((tmp_path / "cache").rglob("*.json"))
    assert entries, "the run must populate the cache"

    assert main(_fig4_tiny("--cache-dir", cache_dir)) == 0
    warm_out = capsys.readouterr().out
    assert warm_out == cold_out


def test_no_cache_leaves_no_cache_dir(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    assert main(_fig4_tiny("--no-cache", "--cache-dir", str(cache_dir))) == 0
    capsys.readouterr()
    assert not cache_dir.exists()


def test_fig6_json_dump(tmp_path, capsys):
    out_path = tmp_path / "fig6.json"
    assert main([
        "fig6", "--protocols", "tcp-pr", "--epsilons", "500",
        "--duration", "2", "--no-cache", "--json", str(out_path),
    ]) == 0
    out = capsys.readouterr().out
    assert str(out_path) in out
    data = json.loads(out_path.read_text())
    assert "tcp-pr" in data["throughput_mbps"]
    assert "500.0" in data["throughput_mbps"]["tcp-pr"]


def test_variants_json_dump(tmp_path, capsys):
    out_path = tmp_path / "variants.json"
    assert main(["variants", "--json", str(out_path)]) == 0
    capsys.readouterr()
    data = json.loads(out_path.read_text())
    assert "tcp-pr" in data["variants"]


def test_compare_json_dump(tmp_path, capsys):
    out_path = tmp_path / "compare.json"
    assert main([
        "compare", "--variants", "tcp-pr", "--epsilon", "500",
        "--duration", "2", "--no-cache", "--json", str(out_path),
    ]) == 0
    capsys.readouterr()
    data = json.loads(out_path.read_text())
    assert data["epsilon"] == 500.0
    assert data["throughput_mbps"]["tcp-pr"] > 0


def test_every_subcommand_exposes_executor_flags():
    parser = build_parser()
    for command in ("variants", "fig2", "fig3", "fig4", "fig6", "fig7",
                    "compare"):
        args = parser.parse_args([
            command, "--jobs", "3", "--no-cache", "--cache-dir", "/tmp/x",
        ])
        assert args.jobs == 3
        assert args.no_cache
        assert args.cache_dir == "/tmp/x"
        assert args.json is None
        assert args.keep_going is False
        assert args.cell_timeout is None
        assert args.retries == 0


# ----------------------------------------------------------------------
# Failure-policy flags: --keep-going / --fail-fast / --cell-timeout
# ----------------------------------------------------------------------
def _fig7_tiny(*extra):
    return [
        "fig7", "--protocols", "tcp-pr", "--outages", "0", "2",
        "--duration", "8", "--period", "4", *extra,
    ]


def test_fig7_tiny_run(capsys):
    assert main(_fig7_tiny("--no-cache")) == 0
    out = capsys.readouterr().out
    assert "Figure 7" in out
    assert "tcp-pr" in out


def test_fig7_cache_round_trip(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(_fig7_tiny("--cache-dir", cache_dir)) == 0
    cold_out = capsys.readouterr().out
    assert list((tmp_path / "cache").rglob("*.json"))
    assert main(_fig7_tiny("--cache-dir", cache_dir)) == 0
    assert capsys.readouterr().out == cold_out


def test_keep_going_and_fail_fast_are_exclusive():
    with pytest.raises(SystemExit):
        build_parser().parse_args(
            ["fig7", "--keep-going", "--fail-fast"]
        )


def test_fig7_keep_going_reports_partial_result(capsys):
    argv = [
        "fig7", "--protocols", "tcp-pr", "nosuch", "--outages", "0",
        "--duration", "4", "--period", "2", "--no-cache", "--keep-going",
    ]
    assert main(argv) == 1  # partial => nonzero exit
    out = capsys.readouterr().out
    assert "Figure 7" in out  # the surviving cells still render
    assert "--" in out  # the failed cell shows as a hole
    assert "cells failed" in out


def test_fig7_fail_fast_aborts_with_error_listing(capsys):
    argv = [
        "fig7", "--protocols", "nosuch", "--outages", "0",
        "--duration", "4", "--period", "2", "--no-cache",
    ]
    assert main(argv) == 1
    captured = capsys.readouterr()
    assert "sweep failed" in captured.err
    assert "Figure 7" not in captured.out


def test_keep_going_json_dump_includes_failures(tmp_path, capsys):
    out_path = tmp_path / "fig7.json"
    argv = [
        "fig7", "--protocols", "tcp-pr", "nosuch", "--outages", "0",
        "--duration", "4", "--period", "2", "--no-cache", "--keep-going",
        "--json", str(out_path),
    ]
    assert main(argv) == 1
    capsys.readouterr()
    data = json.loads(out_path.read_text())
    assert data["goodput_mbps"]["tcp-pr"]["0.0"] > 0
    assert data["goodput_mbps"]["nosuch"]["0.0"] is None
    assert any(key.startswith("nosuch") for key in data["failures"])


# ----------------------------------------------------------------------
# Observability flags: --metrics-out / --trace-out / the obs subcommand
# ----------------------------------------------------------------------
def test_every_subcommand_exposes_observability_flags():
    parser = build_parser()
    for command in ("fig2", "fig3", "fig4", "fig6", "fig7", "compare"):
        args = parser.parse_args([
            command, "--metrics-out", "m.jsonl", "--trace-out", "t.jsonl",
        ])
        assert args.metrics_out == "m.jsonl"
        assert args.trace_out == "t.jsonl"


def test_fig7_metrics_out_emits_obs_v1_stream(tmp_path, capsys):
    from repro.obs import read_jsonl

    metrics_path = tmp_path / "m.jsonl"
    assert main(_fig7_tiny(
        "--no-cache", "--metrics-out", str(metrics_path),
    )) == 0
    out = capsys.readouterr().out
    assert f"[metrics written to {metrics_path}]" in out
    records = read_jsonl(metrics_path)
    header = records[0]
    assert header["record"] == "header"
    assert header["schema"] == "repro.obs/v1"
    assert header["command"] == "fig7"
    kinds = {record["record"] for record in records}
    assert kinds == {"header", "metric", "cell", "sweep"}
    names = {r["name"] for r in records if r["record"] == "metric"}
    assert {"flow.cwnd", "flow.ewrtt", "flow.mxrtt"} <= names
    cells = [r for r in records if r["record"] == "cell"]
    assert all(r["attempts"] == 1 and not r["cached"] for r in cells)
    assert records[-1]["record"] == "sweep"


def test_fig7_trace_out_carries_fault_timeline(tmp_path, capsys):
    from repro.obs import read_jsonl

    trace_path = tmp_path / "t.jsonl"
    argv = [
        "fig7", "--protocols", "tcp-pr", "--outages", "1",
        "--duration", "6", "--period", "2", "--no-cache",
        "--trace-out", str(trace_path),
    ]
    assert main(argv) == 0
    capsys.readouterr()
    records = read_jsonl(trace_path)
    faults = [r for r in records if r["record"] == "fault"]
    assert faults
    assert all("cell" in r for r in faults)


def test_metrics_collection_does_not_change_the_figure(tmp_path, capsys):
    assert main(_fig7_tiny("--no-cache")) == 0
    plain = capsys.readouterr().out
    assert main(_fig7_tiny(
        "--no-cache", "--metrics-out", str(tmp_path / "m.jsonl"),
    )) == 0
    collected = capsys.readouterr().out
    assert collected.startswith(plain.rstrip("\n").rsplit("\n", 0)[0][:40])
    # The rendered table itself is bit-identical; only the trailing
    # "[metrics written to ...]" line differs.
    assert collected.splitlines()[: len(plain.splitlines())] == plain.splitlines()


def test_obs_summary_subcommand(tmp_path, capsys):
    metrics_path = tmp_path / "m.jsonl"
    assert main(_fig7_tiny(
        "--no-cache", "--metrics-out", str(metrics_path),
    )) == 0
    capsys.readouterr()
    assert main(["obs", "summary", str(metrics_path)]) == 0
    out = capsys.readouterr().out
    assert "schema: repro.obs/v1" in out
    assert "metric=" in out


def test_obs_convert_subcommand(tmp_path, capsys):
    import csv

    metrics_path = tmp_path / "m.jsonl"
    assert main(_fig7_tiny(
        "--no-cache", "--metrics-out", str(metrics_path),
    )) == 0
    capsys.readouterr()
    csv_path = tmp_path / "out.csv"
    assert main(["obs", "convert", str(metrics_path), "-o", str(csv_path)]) == 0
    capsys.readouterr()
    csv.field_size_limit(10_000_000)  # timeseries columns are long JSON arrays
    with csv_path.open() as handle:
        rows = list(csv.DictReader(handle))
    assert rows
    assert any(row["record"] == "metric" for row in rows)


def test_obs_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["obs"])


# ----------------------------------------------------------------------
# The trace pipeline: trace analyze / replay / convert
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig6_trace(tmp_path_factory):
    """One traced Figure 6 cell, captured through --trace-out."""
    path = tmp_path_factory.mktemp("trace") / "fig6.jsonl"
    assert main([
        "fig6", "--protocols", "tcp-pr", "--epsilons", "4",
        "--duration", "2", "--no-cache", "--trace-out", str(path),
    ]) == 0
    return path


def test_trace_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["trace"])


def test_trace_subcommands_inherit_the_shared_flag_groups():
    """The parent-parser contract: new subcommands get the full
    execution + observability flag surface by construction."""
    parser = build_parser()
    for argv in (
        ["trace", "analyze", "t.jsonl"],
        ["trace", "replay", "t.jsonl"],
        ["trace", "convert", "t.csv"],
    ):
        args = parser.parse_args([
            *argv, "--jobs", "3", "--no-cache", "--cache-dir", "/tmp/x",
            "--seed", "9", "--metrics-out", "m.jsonl",
        ])
        assert args.jobs == 3
        assert args.no_cache
        assert args.seed == 9
        assert args.metrics_out == "m.jsonl"
        assert args.json is None


def test_trace_analyze_renders_a_report(fig6_trace, capsys):
    assert main(["trace", "analyze", str(fig6_trace)]) == 0
    out = capsys.readouterr().out
    assert "flow=1" in out
    assert "reordered=" in out


def test_trace_analyze_json_dump(fig6_trace, tmp_path, capsys):
    out_path = tmp_path / "report.json"
    assert main([
        "trace", "analyze", str(fig6_trace), "--json", str(out_path),
    ]) == 0
    capsys.readouterr()
    data = json.loads(out_path.read_text())
    (flow_key,) = data["flows"]
    flow = data["flows"][flow_key]
    assert flow["unique_arrivals"] > 0
    assert 0.0 <= flow["reorder_ratio"] <= 1.0


def test_trace_analyze_unknown_flow_lists_known_ones(fig6_trace, capsys):
    assert main(["trace", "analyze", str(fig6_trace), "--flow", "42"]) == 1
    err = capsys.readouterr().err
    assert "flows:" in err


def test_trace_replay_round_trip_through_a_saved_profile(
    fig6_trace, tmp_path, capsys
):
    profile_path = tmp_path / "profile.json"
    assert main([
        "trace", "replay", str(fig6_trace), "--flow", "1",
        "--profile-out", str(profile_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "profile" in out
    assert "open-loop replay" in out
    assert profile_path.exists()

    # The saved profile is itself a valid replay input.
    assert main([
        "trace", "replay", str(profile_path), "--variant", "sack",
        "--duration", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "closed-loop replay" in out
    assert "Mbps goodput" in out


def test_trace_replay_rejects_streams_without_sends(tmp_path, capsys):
    from repro.obs import write_jsonl as _write

    path = tmp_path / "empty.jsonl"
    _write([], path, command="test")
    assert main(["trace", "replay", str(path)]) == 1
    assert "cannot build a replay profile" in capsys.readouterr().err


def test_trace_convert_imports_a_csv_capture(tmp_path, capsys):
    csv_path = tmp_path / "capture.csv"
    csv_path.write_text(
        "time,kind,seq,flow\n"
        "0.0,send,0,1\n0.1,send,1,1\n"
        "0.05,recv,0,1\n0.16,recv,1,1\n"
    )
    assert main(["trace", "convert", str(csv_path)]) == 0
    out = capsys.readouterr().out
    assert "[trace written to" in out
    converted = tmp_path / "capture.jsonl"
    assert main(["trace", "analyze", str(converted)]) == 0
    assert "flow=1" in capsys.readouterr().out


def test_scale_tiny_run(tmp_path, capsys):
    stream = tmp_path / "flows.jsonl"
    spec_out = tmp_path / "scenario.json"
    assert main([
        "scale", "--topology", "dumbbell", "--pairs", "2",
        "--arrival-rate", "3", "--size-dist", "fixed", "--mean-size", "20",
        "--duration", "8", "--shards", "2", "--jobs", "2", "--no-cache",
        "--metrics-out", str(stream), "--spec-out", str(spec_out),
    ]) == 0
    out = capsys.readouterr().out
    assert "Scenario 'scenario'" in out
    assert "2 shard(s)" in out
    records = [json.loads(line) for line in stream.read_text().splitlines()]
    assert records[0]["record"] == "header"
    assert any(record["record"] == "flow" for record in records)

    # The saved spec reproduces the identical run.
    assert main([
        "scale", "--spec", str(spec_out), "--shards", "2", "--no-cache",
    ]) == 0
    rerun = capsys.readouterr().out
    for line in out.splitlines():
        if line.startswith("Scenario"):
            assert line in rerun

"""Property tests for the workload generator: determinism (in-process
and across a process boundary) and structural invariants."""

import multiprocessing

from hypothesis import assume, given, settings, strategies as st

from repro.scenarios.workload import (
    WorkloadSpec,
    count_flows,
    generate_flows,
)

SENDERS = ("s0", "s1", "s2")
RECEIVERS = ("d0", "d1")

workload_specs = st.builds(
    WorkloadSpec,
    arrival=st.sampled_from(["poisson", "fixed"]),
    arrival_rate=st.floats(min_value=0.5, max_value=40.0),
    flow_count=st.integers(min_value=1, max_value=30),
    start_stagger=st.floats(min_value=0.0, max_value=3.0),
    max_flows=st.one_of(st.none(), st.integers(min_value=0, max_value=50)),
    size=st.sampled_from(["pareto", "lognormal", "fixed", "bulk"]),
    mean_size_segments=st.floats(min_value=1.0, max_value=500.0),
    pareto_shape=st.floats(min_value=1.05, max_value=3.0),
    lognormal_sigma=st.floats(min_value=0.1, max_value=2.0),
    min_size_segments=st.integers(min_value=1, max_value=4),
    variant_mix=st.sampled_from(
        [
            (("tcp-pr", 1.0),),
            (("tcp-pr", 1.0), ("sack", 1.0)),
            (("tcp-pr", 0.2), ("sack", 0.3), ("newreno", 0.5)),
        ]
    ),
)


@given(spec=workload_specs, seed=st.integers(min_value=0, max_value=2**31),
       duration=st.floats(min_value=0.5, max_value=10.0))
@settings(max_examples=60, deadline=None)
def test_same_seed_identical_sequence(spec, seed, duration):
    """The generator is a pure function of (spec, endpoints, duration, seed)."""
    assume(spec.arrival != "fixed" or spec.start_stagger <= duration)
    first = list(generate_flows(spec, SENDERS, RECEIVERS, duration, seed))
    second = list(generate_flows(spec, SENDERS, RECEIVERS, duration, seed))
    assert first == second


@given(spec=workload_specs, seed=st.integers(min_value=0, max_value=2**31),
       duration=st.floats(min_value=0.5, max_value=6.0))
@settings(max_examples=60, deadline=None)
def test_structural_invariants(spec, seed, duration):
    assume(spec.arrival != "fixed" or spec.start_stagger <= duration)
    flows = list(generate_flows(spec, SENDERS, RECEIVERS, duration, seed))
    mix_names = {name for name, weight in spec.variant_mix if weight > 0}
    starts = [flow.start for flow in flows]
    assert starts == sorted(starts)  # both modes: non-decreasing starts
    for i, flow in enumerate(flows):
        assert flow.flow_id == 1 + i  # sequential ids in arrival order
        assert flow.src in SENDERS
        assert flow.dst in RECEIVERS
        assert flow.variant in {"tcp-pr", "sack", "newreno"}
        assert flow.variant in mix_names
        if spec.size == "bulk":
            assert flow.size_segments is None
        else:
            assert flow.size_segments >= spec.min_size_segments
        if spec.arrival == "poisson":
            assert 0.0 <= flow.start < duration
        else:
            assert 0.0 <= flow.start <= spec.start_stagger
    if spec.max_flows is not None:
        assert len(flows) <= spec.max_flows
    if spec.arrival == "fixed" and spec.max_flows is None:
        assert len(flows) == spec.flow_count
    assert count_flows(spec, SENDERS, RECEIVERS, duration, seed) == len(flows)


@given(seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=25, deadline=None)
def test_flow_round_trip(seed):
    spec = WorkloadSpec(arrival_rate=5.0, max_flows=10)
    for flow in generate_flows(spec, SENDERS, RECEIVERS, 5.0, seed):
        assert type(flow).from_jsonable(flow.to_jsonable()) == flow


def _child_generates(queue, seed):
    spec = WorkloadSpec(
        arrival_rate=20.0,
        size="pareto",
        variant_mix=(("tcp-pr", 1.0), ("sack", 1.0)),
    )
    flows = list(generate_flows(spec, SENDERS, RECEIVERS, 10.0, seed))
    queue.put([flow.to_jsonable() for flow in flows])


def test_identical_sequence_across_process_boundary():
    """A forked worker regenerates the byte-identical population —
    the invariant sharding rests on."""
    context = multiprocessing.get_context("fork")
    queue = context.Queue()
    child = context.Process(target=_child_generates, args=(queue, 123))
    child.start()
    remote = queue.get(timeout=30)
    child.join(timeout=30)
    spec = WorkloadSpec(
        arrival_rate=20.0,
        size="pareto",
        variant_mix=(("tcp-pr", 1.0), ("sack", 1.0)),
    )
    local = [
        flow.to_jsonable()
        for flow in generate_flows(spec, SENDERS, RECEIVERS, 10.0, 123)
    ]
    assert remote == local
    assert len(local) > 50  # the property is non-vacuous


def test_rejects_degenerate_endpoints():
    spec = WorkloadSpec()
    try:
        list(generate_flows(spec, (), ("d0",), 1.0, 0))
        raise AssertionError("empty senders accepted")
    except ValueError:
        pass
    try:
        list(generate_flows(spec, ("x",), ("x",), 1.0, 0))
        raise AssertionError("self-flow-only topology accepted")
    except ValueError:
        pass


def test_rejects_stagger_beyond_duration():
    """Fixed-mode flows past the horizon would never run: loud error,
    both lazily in the generator and eagerly at ScenarioSpec build."""
    from repro.scenarios import ScenarioSpec
    from repro.topologies import DumbbellSpec

    spec = WorkloadSpec(arrival="fixed", flow_count=4, start_stagger=5.0)
    try:
        list(generate_flows(spec, SENDERS, RECEIVERS, 2.0, 0))
        raise AssertionError("start_stagger > duration accepted")
    except ValueError:
        pass
    list(generate_flows(spec, SENDERS, RECEIVERS, 5.0, 0))  # boundary OK
    try:
        ScenarioSpec(topology=DumbbellSpec(), workload=spec, duration=2.0)
        raise AssertionError("ScenarioSpec accepted stagger > duration")
    except ValueError:
        pass


def test_spec_validation_rejects_unknown_variant():
    try:
        WorkloadSpec(variant_mix=(("tcp-psychic", 1.0),))
        raise AssertionError("unknown variant accepted")
    except (KeyError, ValueError):
        pass

"""Tests for the time-series analysis utilities."""

import pytest

from repro.analysis.throughput import FlowSample
from repro.analysis.timeseries import (
    SeriesPoint,
    StepSeries,
    convergence_time,
    fairness_over_time,
    goodput_series,
    goodput_series_mbps,
)

from conftest import make_flow
from repro.obs import FlowThroughputMonitor


# ----------------------------------------------------------------------
# StepSeries
# ----------------------------------------------------------------------
def test_step_series_lookup():
    series = StepSeries([SeriesPoint(1.0, 10.0), SeriesPoint(2.0, 20.0)])
    assert series.value_at(0.5) == 10.0  # before first point
    assert series.value_at(1.0) == 10.0
    assert series.value_at(1.5) == 10.0
    assert series.value_at(2.0) == 20.0
    assert series.value_at(99.0) == 20.0


def test_step_series_validates():
    with pytest.raises(ValueError):
        StepSeries([])
    with pytest.raises(ValueError):
        StepSeries([SeriesPoint(2.0, 1.0), SeriesPoint(1.0, 2.0)])


def test_time_weighted_mean():
    series = StepSeries([SeriesPoint(0.0, 10.0), SeriesPoint(1.0, 30.0)])
    # [0, 2]: 10 for 1 s, then 30 for 1 s -> mean 20.
    assert series.time_weighted_mean(0.0, 2.0) == pytest.approx(20.0)
    assert series.time_weighted_mean(1.0, 2.0) == pytest.approx(30.0)
    with pytest.raises(ValueError):
        series.time_weighted_mean(2.0, 2.0)


# ----------------------------------------------------------------------
# goodput series
# ----------------------------------------------------------------------
def test_goodput_series_rates():
    samples = [FlowSample(0.0, 0), FlowSample(1.0, 125), FlowSample(2.0, 375)]
    series = goodput_series(samples, mss_bytes=1000)
    # 125 segments in 1 s = 1 Mbps, then 250 segments = 2 Mbps.
    assert series.points[0] == SeriesPoint(1.0, pytest.approx(1e6))
    assert series.points[1] == SeriesPoint(2.0, pytest.approx(2e6))
    mbps = goodput_series_mbps(samples)
    assert mbps[0].value == pytest.approx(1.0)


def test_goodput_series_validates():
    with pytest.raises(ValueError):
        goodput_series([FlowSample(0.0, 0)])
    with pytest.raises(ValueError):
        goodput_series([FlowSample(0.0, 0), FlowSample(0.0, 5)])


# ----------------------------------------------------------------------
# fairness over time / convergence
# ----------------------------------------------------------------------
def test_fairness_over_time_equal_flows():
    a = [FlowSample(float(t), 100 * t) for t in range(5)]
    b = [FlowSample(float(t), 100 * t) for t in range(5)]
    points = fairness_over_time([a, b])
    assert all(p.value == pytest.approx(1.0) for p in points)


def test_fairness_over_time_unfair_flows():
    a = [FlowSample(float(t), 100 * t) for t in range(5)]
    b = [FlowSample(float(t), 0) for t in range(5)]
    points = fairness_over_time([a, b])
    assert all(p.value == pytest.approx(0.5) for p in points)


def test_convergence_time_simple():
    points = [
        SeriesPoint(0.0, 0.5),
        SeriesPoint(1.0, 0.95),
        SeriesPoint(2.0, 0.97),
        SeriesPoint(3.0, 0.99),
    ]
    assert convergence_time(points, threshold=0.9, hold=1.0) == 1.0


def test_convergence_resets_on_dip():
    points = [
        SeriesPoint(0.0, 0.95),
        SeriesPoint(0.5, 0.5),  # dip resets
        SeriesPoint(1.0, 0.95),
        SeriesPoint(3.0, 0.95),
    ]
    assert convergence_time(points, threshold=0.9, hold=1.0) == 1.0


def test_convergence_never():
    points = [SeriesPoint(0.0, 0.3), SeriesPoint(1.0, 0.4)]
    assert convergence_time(points) is None
    assert convergence_time([]) is None


# ----------------------------------------------------------------------
# End to end with real monitors
# ----------------------------------------------------------------------
def test_real_flow_goodput_series():
    flow = make_flow("sack")
    monitor = FlowThroughputMonitor(flow.network.sim, flow.receiver, interval=0.5)
    flow.run(until=10.0)
    series = goodput_series(monitor.samples)
    # Steady state within ~1 Mbps line rate.
    assert 0 < series.value_at(9.0) <= 1.1e6
    assert series.time_weighted_mean(5.0, 10.0) > 0.5e6

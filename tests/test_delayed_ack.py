"""Tests for the receiver's delayed-ACK option (RFC 1122 / RFC 5681)."""

import pytest

from repro.net.network import Network, install_static_routes
from repro.net.packet import Packet
from repro.tcp.base import TcpConfig
from repro.tcp.receiver import TcpReceiver

from conftest import make_flow


class AckCollector:
    def __init__(self):
        self.acks = []

    def receive(self, packet):
        self.acks.append(packet)


def _setup(**kwargs):
    net = Network(seed=0)
    net.add_nodes("snd", "rcv")
    net.add_duplex_link("snd", "rcv", bandwidth=1e9, delay=1e-6)
    install_static_routes(net)
    receiver = TcpReceiver(
        net.sim, net.node("rcv"), 1, "snd", delayed_ack=True, **kwargs
    )
    collector = AckCollector()
    net.node("snd").agents[1] = collector
    return net, receiver, collector


def _data(seq):
    return Packet("data", "snd", "rcv", flow_id=1, seq=seq)


def test_every_second_segment_acked():
    net, receiver, collector = _setup()
    receiver.receive(_data(0))
    net.run(until=net.sim.now + 0.01)
    assert len(collector.acks) == 0  # first in-order segment: held
    receiver.receive(_data(1))
    net.run(until=net.sim.now + 0.01)
    assert len(collector.acks) == 1  # second segment flushes
    assert collector.acks[0].ack == 2


def test_timer_flushes_lone_segment():
    net, receiver, collector = _setup(delack_timeout=0.2)
    receiver.receive(_data(0))
    net.run(until=0.15)
    assert len(collector.acks) == 0
    net.run(until=0.3)
    assert len(collector.acks) == 1
    assert collector.acks[0].ack == 1
    assert receiver.delayed_acks_sent == 1


def test_out_of_order_acked_immediately():
    net, receiver, collector = _setup()
    receiver.receive(_data(0))  # held
    receiver.receive(_data(2))  # out of order: immediate ACK
    net.run(until=net.sim.now + 0.01)
    assert len(collector.acks) == 1
    assert collector.acks[0].ack == 1
    assert collector.acks[0].sack_blocks == [(2, 3)]
    # The held ACK was superseded; the timer must not fire a stale ACK.
    net.run(until=1.0)
    assert len(collector.acks) == 1


def test_hole_fill_acked_immediately():
    net, receiver, collector = _setup()
    receiver.receive(_data(1))  # ooo -> immediate dupack
    receiver.receive(_data(0))  # fills the hole -> immediate cumulative
    net.run(until=net.sim.now + 0.01)
    assert [a.ack for a in collector.acks] == [0, 2]


def test_duplicate_acked_immediately():
    net, receiver, collector = _setup()
    receiver.receive(_data(0))
    receiver.receive(_data(1))  # flush
    receiver.receive(_data(1))  # duplicate: immediate with DSACK
    net.run(until=net.sim.now + 0.01)
    assert len(collector.acks) == 2
    assert collector.acks[-1].dsack == (1, 2)


def test_invalid_timeout_rejected():
    net = Network(seed=0)
    net.add_nodes("snd", "rcv")
    net.add_duplex_link("snd", "rcv", bandwidth=1e9, delay=1e-6)
    with pytest.raises(ValueError):
        TcpReceiver(net.sim, net.node("rcv"), 1, "snd",
                    delayed_ack=True, delack_timeout=0.0)
    with pytest.raises(ValueError):
        TcpReceiver(net.sim, net.node("rcv"), 2, "snd",
                    delayed_ack=True, delack_timeout=0.8)


def test_bulk_flow_with_delayed_acks_still_saturates():
    """End-to-end: a SACK flow against a delayed-ACK receiver reaches
    full utilization (with roughly half the ACK traffic)."""
    flow = make_flow("sack", tcp_config=TcpConfig(initial_ssthresh=16))
    flow.run(until=10.0)
    per_packet_acks = flow.receiver.acks_sent

    net = Network(seed=0)
    net.add_nodes("snd", "rcv")
    net.add_duplex_link("snd", "rcv", bandwidth=1e6, delay=0.01, queue=100)
    install_static_routes(net)
    from repro.tcp.registry import make_sender

    sender = make_sender("sack", net.sim, net.node("snd"), 1, "rcv",
                         tcp_config=TcpConfig(initial_ssthresh=16))
    receiver = TcpReceiver(net.sim, net.node("rcv"), 1, "snd", delayed_ack=True)
    sender.start(0.0)
    net.run(until=10.0)
    assert receiver.delivered >= 0.8 * 125 * 10
    assert receiver.acks_sent < 0.7 * per_packet_acks


def test_tcp_pr_works_with_delayed_acks():
    """TCP-PR needs no receiver changes — including a delayed-ACK one.
    mxrtt absorbs the delack timeout into its maximum tracking."""
    net = Network(seed=0)
    net.add_nodes("snd", "rcv")
    net.add_duplex_link("snd", "rcv", bandwidth=1e6, delay=0.01, queue=100)
    install_static_routes(net)
    from repro.core.pr import PrConfig
    from repro.tcp.registry import make_sender

    sender = make_sender("tcp-pr", net.sim, net.node("snd"), 1, "rcv",
                         pr_config=PrConfig(initial_ssthresh=16))
    receiver = TcpReceiver(net.sim, net.node("rcv"), 1, "snd", delayed_ack=True)
    sender.start(0.0)
    net.run(until=15.0)
    assert receiver.delivered >= 0.7 * 125 * 15
    # The held-back ACKs must not read as losses.
    assert sender.stats.window_cuts <= 2

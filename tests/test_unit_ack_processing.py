"""Micro-level ACK-processing tests: hand-crafted ACKs, no network RTT.

These pin the exact state transitions of Table 1 (TCP-PR) and the
Reno-family recovery logic, independent of queueing dynamics.
"""

import pytest

from repro.core.pr import CONG_AVOID, SLOW_START, PrConfig, TcpPrSender
from repro.net.network import Network, install_static_routes
from repro.net.packet import Packet
from repro.tcp.base import TcpConfig
from repro.tcp.reno import RenoSender
from repro.tcp.sack import SackSender


def _harness(sender_cls, **sender_kwargs):
    """A sender on an isolated node; we feed ACKs by hand."""
    net = Network(seed=0)
    net.add_nodes("snd", "rcv")
    net.add_duplex_link("snd", "rcv", bandwidth=1e9, delay=1e-6, queue=10_000)
    install_static_routes(net)
    sender = sender_cls(net.sim, net.node("snd"), 1, "rcv", **sender_kwargs)
    return net, sender


def _ack(ack, sack_blocks=None, dsack=None):
    return Packet("ack", "rcv", "snd", flow_id=1, ack=ack,
                  sack_blocks=sack_blocks, dsack=dsack)


# ----------------------------------------------------------------------
# TCP-PR (Table 1)
# ----------------------------------------------------------------------
def test_pr_initialization_matches_table1():
    net, sender = _harness(TcpPrSender)
    assert sender.mode == SLOW_START
    assert sender.cwnd == 1.0
    assert sender.ssthr == float("inf")
    assert not sender.memorize


def test_pr_ack_removes_cumulatively():
    net, sender = _harness(TcpPrSender)
    sender.start(0.0)
    net.run(until=0.0)  # sends segment 0 (cwnd = 1)
    assert sorted(sender.to_be_ack) == [0]
    net.sim.now = 0.03  # a plausible RTT elapses before the ACK
    sender.receive(_ack(1))
    assert 0 not in sender.to_be_ack
    assert sender.cwnd == 2.0  # slow start +1


def test_pr_sack_block_removes_out_of_order():
    net, sender = _harness(TcpPrSender, config=PrConfig(initial_cwnd=4.0))
    sender.start(0.0)
    net.run(until=0.0)  # sends 0..3
    assert sorted(sender.to_be_ack) == [0, 1, 2, 3]
    net.sim.now = 0.03
    # Dupack (ack=0) carrying SACK for segment 2 only.
    sender.receive(_ack(0, sack_blocks=[(2, 3)]))
    assert 2 not in sender.to_be_ack
    assert 0 in sender.to_be_ack  # cumulative point untouched
    assert sender.cwnd == pytest.approx(5.0)  # one acked packet, +1 (SS)


def test_pr_pure_dupack_is_ignored():
    net, sender = _harness(TcpPrSender, config=PrConfig(initial_cwnd=4.0))
    sender.start(0.0)
    net.run(until=0.0)
    cwnd_before = sender.cwnd
    sent_before = sender.stats.data_packets_sent
    for _ in range(5):
        sender.receive(_ack(0))  # no SACK info at all
    assert sender.cwnd == cwnd_before
    assert sender.stats.data_packets_sent == sent_before
    assert len(sender.to_be_ack) == 4


def test_pr_mode_transition_at_ssthr():
    net, sender = _harness(
        TcpPrSender, config=PrConfig(initial_cwnd=1.0, initial_ssthresh=2.0)
    )
    sender.start(0.0)
    net.run(until=0.0)
    net.sim.now = 0.03  # a plausible RTT before the first ACK, so the
    # resulting ewrtt (and mxrtt = 0.09) exceeds the little run below.
    sender.receive(_ack(1))  # cwnd 1 -> 2 (cwnd+1 <= ssthr)
    assert sender.mode == SLOW_START
    assert sender.cwnd == 2.0
    net.run(until=net.sim.now + 0.01)  # let it transmit the next window
    sender.receive(_ack(2))  # cwnd+1 > ssthr: CA, += 1/cwnd
    assert sender.mode == CONG_AVOID
    assert sender.cwnd == pytest.approx(2.5)


def test_pr_ewrtt_updates_per_acked_packet():
    net, sender = _harness(TcpPrSender, config=PrConfig(initial_cwnd=3.0))
    sender.start(0.0)
    net.run(until=0.0)
    assert sender.estimator.samples == 0
    net.sim.now = 0.05  # pretend 50 ms elapsed
    sender.receive(_ack(3))  # cumulative ACK for 0,1,2
    assert sender.estimator.samples == 3
    assert sender.ewrtt == pytest.approx(0.05)
    assert sender.mxrtt == pytest.approx(0.15)  # beta = 3


def test_pr_window_cut_and_memorize_snapshot():
    net, sender = _harness(TcpPrSender, config=PrConfig(initial_cwnd=8.0))
    sender.start(0.0)
    net.run(until=0.0)  # sends 0..7
    sender._declare_drop(0)
    assert sender.stats.window_cuts == 1
    assert sender.cwnd == pytest.approx(4.0)  # cwnd(n)/2 = 8/2
    assert sender.ssthr == pytest.approx(4.0)
    # memorize snapshots what was outstanding (minus the dropped packet
    # itself and anything just retransmitted/sent by the flush).
    assert 0 not in sender.memorize
    assert {1, 2, 3} <= sender.memorize


def test_pr_memorize_drop_does_not_cut_again():
    net, sender = _harness(TcpPrSender, config=PrConfig(initial_cwnd=8.0))
    sender.start(0.0)
    net.run(until=0.0)
    sender._declare_drop(0)
    cwnd_after_first = sender.cwnd
    sender._declare_drop(1)  # 1 is in memorize
    assert sender.cwnd == cwnd_after_first
    assert sender.stats.window_cuts == 1
    assert sender.stats.memorize_drops == 1
    assert sender.cburst == 1


def test_pr_ack_empties_memorize_and_resets_cburst():
    net, sender = _harness(TcpPrSender, config=PrConfig(initial_cwnd=4.0))
    sender.start(0.0)
    net.run(until=0.0)
    sender._declare_drop(0)
    sender._declare_drop(1)  # memorize drop -> cburst 1
    assert sender.cburst == 1
    sender.receive(_ack(0, sack_blocks=[(2, 4)]))  # clears 2 and 3
    assert not sender.memorize
    assert sender.cburst == 0


def test_pr_snapshot_excludes_dropped_packet():
    """Table 1 order: the dropped packet leaves to-be-ack *before* the
    memorize snapshot is taken."""
    net, sender = _harness(TcpPrSender, config=PrConfig(initial_cwnd=4.0))
    sender.start(0.0)
    net.run(until=0.0)
    sender._declare_drop(2)
    assert 2 not in sender.memorize


def test_pr_zero_rtt_sample_does_not_deadlock():
    """Regression: a degenerate zero-RTT sample once made mxrtt = 0 and
    spun the declare/retransmit loop at a single timestamp forever.  The
    min_mxrtt floor keeps the simulation advancing."""
    net, sender = _harness(TcpPrSender)
    sender.start(0.0)
    net.run(until=0.0)
    sender.receive(_ack(1))  # instant ACK: RTT sample of exactly zero
    assert sender.mxrtt > 0.0
    # Without the floor this run never returned (events at one instant).
    net.run(until=0.05, max_events=200_000)
    assert net.sim.now == pytest.approx(0.05)


# ----------------------------------------------------------------------
# Reno / SACK recovery details
# ----------------------------------------------------------------------
def test_reno_enters_recovery_on_third_dupack():
    net, sender = _harness(
        RenoSender, config=TcpConfig(initial_cwnd=8.0, initial_ssthresh=64)
    )
    sender.start(0.0)
    net.run(until=0.0)  # 8 segments out
    for i in range(2):
        sender.receive(_ack(0))
        assert not sender.in_recovery
    sender.receive(_ack(0))  # third dupack
    assert sender.in_recovery
    assert sender.stats.fast_retransmits == 1
    assert sender.ssthresh == pytest.approx(4.0)


def test_reno_inflation_and_exit():
    net, sender = _harness(
        RenoSender, config=TcpConfig(initial_cwnd=8.0, initial_ssthresh=64)
    )
    sender.start(0.0)
    net.run(until=0.0)
    for _ in range(3):
        sender.receive(_ack(0))
    cwnd_at_entry = sender.cwnd  # ssthresh + 3
    sender.receive(_ack(0))  # extra dupack inflates
    assert sender.cwnd == pytest.approx(cwnd_at_entry + 1)
    sender.receive(_ack(8))  # new ACK: classic Reno exits
    assert not sender.in_recovery
    assert sender.cwnd == pytest.approx(sender.ssthresh)


def test_sack_recovery_uses_scoreboard_not_dupack_count():
    """RFC 3517: recovery can trigger via IsLost(snd_una) even if the
    literal dupack count is below dupthresh (e.g. ACK loss)."""
    net, sender = _harness(
        SackSender, config=TcpConfig(initial_cwnd=10.0, initial_ssthresh=64)
    )
    sender.start(0.0)
    net.run(until=0.0)
    # One dupack whose SACK blocks already report 3 segments above 0.
    sender.receive(_ack(0, sack_blocks=[(2, 5)]))
    assert sender.in_recovery
    assert sender.stats.fast_retransmits == 1


def test_sack_exit_on_recovery_point():
    net, sender = _harness(
        SackSender, config=TcpConfig(initial_cwnd=6.0, initial_ssthresh=64)
    )
    sender.start(0.0)
    net.run(until=0.0)  # 0..5 out, snd_max = 6
    sender.receive(_ack(0, sack_blocks=[(1, 4)]))
    assert sender.in_recovery
    recovery_point = sender.recovery_point
    sender.receive(_ack(recovery_point - 1))  # partial: still in recovery
    assert sender.in_recovery
    sender.receive(_ack(recovery_point + 2))
    assert not sender.in_recovery

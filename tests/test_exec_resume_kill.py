"""The acceptance scenario for crash-safe sweeps: SIGKILL and re-invoke.

A subprocess runs a three-cell sweep with per-cell checkpointing; the
test kills it -9 while the middle cell is stalled mid-run (checkpoints
already on disk), then re-invokes the same sweep with ``resume=True``.
The second invocation must complete with **zero lost and zero
duplicated cells**: the finished cell is cache-served, the in-flight
cell resumes from its checkpoint (same final result as an uninterrupted
run), and the never-started cell runs fresh.

Also here: unit tests for the journal itself and the torn-tail JSONL
recovery it is built on.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.exec.cache import ResultCache
from repro.exec.journal import JournalState, SweepJournal, sweep_id_for
from repro.exec.spec import SweepCell
from repro.exec.testing import CHECKPOINT_CELL, checkpoint_cell
from repro.obs.export import JsonlAppender, read_jsonl, recover_jsonl_tail

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _cells(log_path, block_path):
    return [
        SweepCell(
            key="c0",
            func=CHECKPOINT_CELL,
            params={"duration": 1.5, "log_path": log_path, "tag": "c0"},
            seed=11,
        ),
        SweepCell(
            key="c1",
            func=CHECKPOINT_CELL,
            params={
                "duration": 3.0,
                "pause_at": 2.0,
                "block_path": block_path,
                "log_path": log_path,
                "tag": "c1",
            },
            seed=22,
        ),
        SweepCell(
            key="c2",
            func=CHECKPOINT_CELL,
            params={"duration": 1.5, "log_path": log_path, "tag": "c2"},
            seed=33,
        ),
    ]


_DRIVER = """
import json, sys
from pathlib import Path
sys.path.insert(0, {src!r})
from repro.exec.cache import ResultCache
from repro.exec.runner import ParallelRunner
from repro.exec.spec import SweepCell
from repro.exec.testing import CHECKPOINT_CELL

cache_dir, log_path, block_path = sys.argv[1:4]
cells = [
    SweepCell(key="c0", func=CHECKPOINT_CELL,
              params={{"duration": 1.5, "log_path": log_path, "tag": "c0"}},
              seed=11),
    SweepCell(key="c1", func=CHECKPOINT_CELL,
              params={{"duration": 3.0, "pause_at": 2.0,
                       "block_path": block_path, "log_path": log_path,
                       "tag": "c1"}},
              seed=22),
    SweepCell(key="c2", func=CHECKPOINT_CELL,
              params={{"duration": 1.5, "log_path": log_path, "tag": "c2"}},
              seed=33),
]
runner = ParallelRunner(
    cache=ResultCache(root=Path(cache_dir)),
    checkpoint_every=0.5,
    resume=True,
)
results = runner.run_cells(cells)
stats = runner.last_stats
print(json.dumps({{
    "results": results,
    "cached": stats.cached,
    "executed": stats.executed,
    "resumed": stats.resumed,
    "reconciled": stats.reconciled,
}}))
"""


def _wait_for(predicate, deadline=90.0, interval=0.05):
    start = time.monotonic()  # lint: allow-wallclock(test coordinates with a real worker process, not simulated time)
    while time.monotonic() - start < deadline:  # lint: allow-wallclock(test coordinates with a real worker process, not simulated time)
        if predicate():
            return True
        time.sleep(interval)  # lint: allow-wallclock(test coordinates with a real worker process, not simulated time)
    return False


@pytest.mark.faults
@pytest.mark.timeout(300)
def test_sigkill_mid_sweep_then_resume_loses_nothing(tmp_path):
    cache_root = tmp_path / "cache"
    log_path = tmp_path / "cells.log"
    block_path = tmp_path / "block"
    block_path.write_text("")  # sentinel: c1 stalls while this exists

    cells = _cells(str(log_path), str(block_path))
    cache = ResultCache(root=cache_root)
    journal = SweepJournal.for_cells(cells, root=cache.root, version=cache.version)
    c1_ckpt = journal.checkpoint_path("c1")

    driver = _DRIVER.format(src=SRC_DIR)
    argv = [sys.executable, "-c", driver, str(cache_root), str(log_path), str(block_path)]

    # --- Phase 1: run until c1 has checkpointed, then SIGKILL. -----------
    victim = subprocess.Popen(argv, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    try:
        assert _wait_for(c1_ckpt.exists), (
            "c1 never wrote a checkpoint; driver stderr:\n"
            + (victim.stderr.read().decode() if victim.poll() is not None else "<still running>")
        )
        # Give the cell a beat to advance past the snapshot; the exact
        # kill instant does not matter — checkpoint writes are atomic,
        # so *some* complete snapshot is always on disk from here on.
        time.sleep(0.3)  # lint: allow-wallclock(test coordinates with a real worker process, not simulated time)
        assert victim.poll() is None, "driver exited before the staged kill"
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)
    finally:
        if victim.poll() is None:
            victim.kill()

    phase1_log = log_path.read_text()
    assert "c0:fresh" in phase1_log and "c1:fresh" in phase1_log
    assert "c2" not in phase1_log  # serial order: c2 never started
    assert c1_ckpt.exists()

    # --- Phase 2: unblock and re-invoke the identical sweep. -------------
    block_path.unlink()
    done = subprocess.run(argv, capture_output=True, text=True, timeout=300)
    assert done.returncode == 0, done.stderr
    payload = json.loads(done.stdout)

    # Zero lost cells: all three results present and well-formed.
    results = payload["results"]
    assert sorted(results) == ["c0", "c1", "c2"]
    assert results["c1"]["resumed"] is True
    assert results["c0"]["resumed"] is False
    assert results["c2"]["resumed"] is False

    # The resumed cell's result equals an uninterrupted in-process run.
    for key, duration, seed in (("c0", 1.5, 11), ("c1", 3.0, 22), ("c2", 1.5, 33)):
        reference = checkpoint_cell(duration=duration, seed=seed)
        assert results[key]["delivered"] == reference["delivered"], key

    # Zero duplicated cells: c0 was cache-served (no second "c0:" log
    # line), c1 resumed rather than restarting, c2 ran exactly once.
    log_lines = log_path.read_text().splitlines()
    assert log_lines.count("c0:fresh") == 1
    assert log_lines.count("c1:fresh") == 1
    assert log_lines.count("c1:resumed") == 1
    assert log_lines.count("c2:fresh") == 1
    assert len(log_lines) == 4

    assert payload["cached"] == 1  # c0
    assert payload["executed"] == 2  # c1 (resumed) + c2
    assert payload["resumed"] == 1  # c1

    # Journal: everything finished ok; c1 and c2 took a second attempt
    # (cell-start records are journalled at dispatch-set construction).
    state = journal.load()
    assert state.finished == {"c0": "ok", "c1": "ok", "c2": "ok"}
    assert state.started["c0"] == 0
    assert state.started["c1"] == 1
    assert state.started["c2"] == 1
    assert state.in_flight == []
    assert not c1_ckpt.exists()  # completion retired the snapshot


# ----------------------------------------------------------------------
# Journal unit tests
# ----------------------------------------------------------------------
def test_sweep_id_is_stable_and_content_sensitive():
    cells = _cells(None, None)
    assert sweep_id_for(cells) == sweep_id_for(list(cells))
    changed_seed = _cells(None, None)
    changed_seed[1] = SweepCell(
        key=changed_seed[1].key,
        func=changed_seed[1].func,
        params=changed_seed[1].params,
        seed=99,
    )
    assert sweep_id_for(changed_seed) != sweep_id_for(cells)
    assert sweep_id_for(cells, version="other") != sweep_id_for(cells)


def test_journal_replay_and_in_flight(tmp_path):
    journal = SweepJournal(tmp_path, "abc123")
    with journal:
        journal.open(total=3)
        journal.cell_started("a", attempt=0)
        journal.cell_started("b", attempt=0)
        journal.cell_finished("a", "ok")
    state = journal.load()
    assert state.total == 3
    assert state.started == {"a": 0, "b": 0}
    assert state.finished == {"a": "ok"}
    assert state.in_flight == ["b"]
    assert state.recovered_bytes == 0

    # Re-invocation: a second attempt of b, then a failure status.
    with journal:
        journal.open(total=3)
        journal.cell_started("b", attempt=1)
        journal.cell_finished("b", "failed")
    state = journal.load()
    assert state.started["b"] == 1
    assert state.finished == {"a": "ok", "b": "failed"}
    assert state.in_flight == []


def test_journal_load_recovers_torn_tail(tmp_path):
    journal = SweepJournal(tmp_path, "torn")
    with journal:
        journal.open(total=1)
        journal.cell_started("a", attempt=0)
    with journal.path.open("ab") as handle:
        handle.write(b'{"record": "cell-fin')  # kill mid-append
    state = journal.load()
    assert state.recovered_bytes > 0
    assert state.started == {"a": 0}
    assert state.finished == {}


def test_journal_finish_retires_checkpoint(tmp_path):
    journal = SweepJournal(tmp_path, "retire")
    with journal:
        journal.open(total=1)
        ckpt = journal.checkpoint_path("a")
        ckpt.write_bytes(b"stale snapshot")
        journal.cell_finished("a", "ok")
        assert not ckpt.exists()


def test_journal_checkpoint_paths_are_safe_and_distinct(tmp_path):
    journal = SweepJournal(tmp_path, "paths")
    weird = journal.checkpoint_path("../../../etc: passwd\n")
    assert weird.parent == journal.directory
    assert weird.suffix == ".ckpt"
    assert weird != journal.checkpoint_path("other")


def test_journal_append_requires_open(tmp_path):
    journal = SweepJournal(tmp_path, "closed")
    with pytest.raises(ValueError):
        journal.cell_started("a")


def test_journal_state_defaults():
    state = JournalState()
    assert state.total is None
    assert state.in_flight == []


# ----------------------------------------------------------------------
# Torn-tail JSONL recovery (the journal's durability primitive)
# ----------------------------------------------------------------------
def test_recover_jsonl_tail_truncates_partial_line(tmp_path):
    path = tmp_path / "x.jsonl"
    path.write_bytes(b'{"a": 1}\n{"b": 2}\n{"c": ')
    removed = recover_jsonl_tail(path)
    assert removed == len(b'{"c": ')
    assert read_jsonl(path) == [{"a": 1}, {"b": 2}]


def test_recover_jsonl_tail_drops_unparseable_terminated_line(tmp_path):
    path = tmp_path / "x.jsonl"
    path.write_bytes(b'{"a": 1}\n{"b": \n{"c":\n')
    recover_jsonl_tail(path)
    assert read_jsonl(path) == [{"a": 1}]


def test_recover_jsonl_tail_noops_on_clean_and_missing(tmp_path):
    path = tmp_path / "x.jsonl"
    assert recover_jsonl_tail(path) == 0  # missing file
    path.write_bytes(b'{"a": 1}\n')
    assert recover_jsonl_tail(path) == 0
    assert read_jsonl(path) == [{"a": 1}]


def test_jsonl_appender_resumes_after_torn_write(tmp_path):
    path = tmp_path / "x.jsonl"
    with JsonlAppender(path, header=False) as out:
        out.write({"n": 1})
    with path.open("ab") as handle:
        handle.write(b'{"n": 2')  # torn
    with JsonlAppender(path, header=False) as out:
        assert out.recovered_bytes > 0
        out.write({"n": 3})
    assert read_jsonl(path) == [{"n": 1}, {"n": 3}]

"""Tests for the removed legacy APIs: the ``repro.trace`` tombstone and
the spec-required experiment entry points.

The shims that used to live here have expired: ``repro.trace`` now
raises at import with a migration map, and ``run_figN`` rejects every
pre-spec calling convention through
:func:`repro.experiments._deprecation.require_spec`.
"""

import importlib
import subprocess
import sys

import pytest

from repro.experiments._deprecation import (
    EXEC_OPTION_KEYS,
    LegacyCallError,
    reject_legacy_call,
)


# ----------------------------------------------------------------------
# repro.trace tombstone
# ----------------------------------------------------------------------
def test_import_repro_trace_raises_with_migration_map():
    with pytest.raises(ModuleNotFoundError) as excinfo:
        importlib.import_module("repro.trace")
    message = str(excinfo.value)
    assert "repro.trace was removed" in message
    assert "repro.obs.monitors" in message
    assert "repro.obs.trace" in message
    assert "repro.traces" in message
    assert "docs/TRACES.md" in message


def test_import_repro_trace_fails_in_a_fresh_interpreter():
    """The acceptance check, verbatim: ``import repro.trace`` fails."""
    proc = subprocess.run(
        [sys.executable, "-c", "import repro.trace"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode != 0
    assert "repro.trace was removed" in proc.stderr


def test_no_in_tree_module_imports_the_tombstone():
    """Nothing under repro/ may import repro.trace (repro.traces is the
    new pipeline; repro.obs.trace is the tracer's canonical home)."""
    import re
    from pathlib import Path

    import repro

    root = Path(repro.__file__).parent
    pattern = re.compile(
        r"^\s*(?:from\s+repro\.trace\s+import|import\s+repro\.trace(?:\s|$))",
        re.MULTILINE,
    )
    offenders = [
        str(path)
        for path in root.rglob("*.py")
        if path.name != "trace.py" and pattern.search(path.read_text())
    ]
    assert offenders == []


# ----------------------------------------------------------------------
# Spec-required experiment entry points
# ----------------------------------------------------------------------
def test_run_fig6_rejects_keyword_form():
    from repro.experiments.fig6_multipath import run_fig6

    with pytest.raises(LegacyCallError, match="Fig6Spec"):
        run_fig6(protocols=("tcp-pr",), epsilons=(500.0,), duration=2.0)


def test_run_fig6_rejects_positional_link_delay():
    from repro.experiments.fig6_multipath import run_fig6

    with pytest.raises(LegacyCallError, match="run_fig6"):
        run_fig6(0.01)


def test_run_fig2_rejects_positional_topology():
    from repro.experiments.fig2_fairness import run_fig2

    with pytest.raises(LegacyCallError, match="Fig2Spec"):
        run_fig2("dumbbell", flow_counts=(2,))


def test_run_fig4_rejects_missing_spec():
    from repro.experiments.fig4_params import run_fig4

    with pytest.raises(LegacyCallError, match="docs/EXECUTOR.md"):
        run_fig4()


def test_beta_sweep_rejects_positional_betas():
    from repro.experiments.fig4_params import run_extreme_loss_beta_sweep

    with pytest.raises(LegacyCallError, match="BetaSweepSpec"):
        run_extreme_loss_beta_sweep([1.0, 2.0])


def test_stale_spec_keywords_are_rejected_even_with_a_spec():
    from repro.experiments.fig6_multipath import Fig6Spec, run_fig6

    with pytest.raises(LegacyCallError, match="epsilons"):
        run_fig6(Fig6Spec(), epsilons=(0.1,))


def test_exec_options_still_pass_through():
    from repro.experiments.fig6_multipath import Fig6Spec, run_fig6

    result = run_fig6(
        Fig6Spec(protocols=("tcp-pr",), epsilons=(500.0,), duration=2.0),
        keep_going=True,
    )
    assert result.throughput_mbps


def test_error_names_replacement_and_docs():
    with pytest.raises(LegacyCallError) as excinfo:
        reject_legacy_call("run_fig9", "Fig9Spec", "spec=None")
    message = str(excinfo.value)
    assert "Fig9Spec.presets(Scale.QUICK" in message
    assert "docs/EXECUTOR.md" in message
    assert "run_fig9(spec, jobs=" in message


def test_exec_option_keys_match_run_sweep_signature():
    """The screening set must track run_sweep's keyword surface."""
    import inspect

    from repro.exec.runner import run_sweep

    parameters = set(inspect.signature(run_sweep).parameters)
    # run_sweep's spec/jobs/cache/seed are explicit run_figN parameters.
    assert EXEC_OPTION_KEYS <= parameters

"""Tests for the deprecation shims: repro.trace re-exports and the
legacy keyword-form experiment entry points.

All deprecation messages are ``repro.``-prefixed so pytest.ini can turn
them into errors for internal code while tests opt in via pytest.warns.
"""

import warnings

import pytest

import repro.obs
import repro.obs.monitors
import repro.obs.trace
import repro.trace
import repro.trace.events
import repro.trace.monitors


# ----------------------------------------------------------------------
# repro.trace module shims
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "shim, home, name",
    [
        (repro.trace, repro.obs, "FlowThroughputMonitor"),
        (repro.trace, repro.obs, "CwndMonitor"),
        (repro.trace, repro.obs, "QueueMonitor"),
        (repro.trace, repro.obs, "FaultTimelineMonitor"),
        (repro.trace, repro.obs, "PacketTracer"),
        (repro.trace, repro.obs, "FaultRecord"),
        (repro.trace.monitors, repro.obs.monitors, "FlowThroughputMonitor"),
        (repro.trace.monitors, repro.obs.monitors, "CwndMonitor"),
        (repro.trace.monitors, repro.obs.monitors, "QueueMonitor"),
        (repro.trace.monitors, repro.obs.monitors, "FaultTimelineMonitor"),
        (repro.trace.events, repro.obs.trace, "PacketTracer"),
        (repro.trace.events, repro.obs.trace, "TraceEvent"),
        (repro.trace.events, repro.obs.trace, "FaultRecord"),
    ],
)
def test_trace_shim_warns_and_returns_the_moved_object(shim, home, name):
    with pytest.warns(DeprecationWarning, match=r"^repro\.trace.*deprecated"):
        shimmed = getattr(shim, name)
    assert shimmed is getattr(home, name)


def test_trace_shim_message_points_at_new_home():
    with pytest.warns(DeprecationWarning) as caught:
        repro.trace.PacketTracer
    message = str(caught[0].message)
    assert "repro.trace.PacketTracer" in message
    assert "repro.obs" in message
    assert "docs/OBSERVABILITY.md" in message


def test_trace_shim_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        repro.trace.NoSuchThing
    with pytest.raises(AttributeError):
        repro.trace.monitors.NoSuchThing
    with pytest.raises(AttributeError):
        repro.trace.events.NoSuchThing


def test_trace_shim_all_lists_only_moved_names():
    assert set(repro.trace.__all__) == {
        "CwndMonitor",
        "FaultRecord",
        "FaultTimelineMonitor",
        "FlowThroughputMonitor",
        "PacketTracer",
        "QueueMonitor",
    }


# ----------------------------------------------------------------------
# Legacy keyword-form experiment entry points
# ----------------------------------------------------------------------
def test_legacy_run_fig6_keyword_form_warns():
    from repro.experiments.fig6_multipath import run_fig6

    with pytest.warns(DeprecationWarning, match=r"^repro\.experiments\.run_fig6"):
        run_fig6(protocols=("tcp-pr",), epsilons=(500.0,), duration=2.0)


def test_spec_form_does_not_warn():
    from repro.experiments.fig6_multipath import Fig6Spec, run_fig6

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        run_fig6(Fig6Spec(protocols=("tcp-pr",), epsilons=(500.0,), duration=2.0))


def test_legacy_warning_names_the_spec_class():
    from repro.experiments.fig4_params import run_fig4

    with pytest.warns(DeprecationWarning, match="Fig4Spec") as caught:
        run_fig4(alphas=(0.995,), betas=(1.0,), total_flows=2, duration=3.0,
                 measure_window=2.0)
    assert "docs/EXECUTOR.md" in str(caught[0].message)


def test_internal_code_cannot_use_its_own_shims():
    """pytest.ini turns repro.* DeprecationWarnings into errors, so any
    internal import through a shim fails the suite loudly."""
    with pytest.raises(DeprecationWarning):
        warnings.warn("repro.trace.X is deprecated", DeprecationWarning)

"""Tests for the metrics registry (repro.obs.registry)."""

import pytest

from repro.obs import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.registry import Counter, Gauge, Histogram, Timeseries


# ----------------------------------------------------------------------
# Identity and get-or-create
# ----------------------------------------------------------------------
def test_same_identity_returns_same_object():
    registry = MetricsRegistry()
    a = registry.counter("link.drops", link="a->b", kind="queue")
    b = registry.counter("link.drops", kind="queue", link="a->b")
    assert a is b  # label order is irrelevant to identity
    assert len(registry) == 1


def test_different_labels_are_different_metrics():
    registry = MetricsRegistry()
    a = registry.counter("link.drops", link="a->b")
    b = registry.counter("link.drops", link="b->a")
    assert a is not b
    assert len(registry) == 2
    assert {m.label_dict["link"] for m in registry.find("link.drops")} == {
        "a->b",
        "b->a",
    }


def test_kind_conflict_is_a_type_error():
    registry = MetricsRegistry()
    registry.counter("flow.cwnd", flow=1)
    with pytest.raises(TypeError, match="already registered as counter"):
        registry.timeseries("flow.cwnd", flow=1)


def test_get_and_find():
    registry = MetricsRegistry()
    metric = registry.gauge("queue.depth", link="x")
    assert registry.get("queue.depth", link="x") is metric
    assert registry.get("queue.depth", link="y") is None
    assert registry.find("queue.depth") == [metric]


# ----------------------------------------------------------------------
# Metric behavior
# ----------------------------------------------------------------------
def test_counter_increments_and_rejects_negative():
    counter = Counter("c", ())
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_last_write_wins():
    gauge = Gauge("g", ())
    assert gauge.value is None
    gauge.set(4.0)
    gauge.set(2.0)
    assert gauge.value == 2.0


def test_histogram_buckets_and_overflow():
    hist = Histogram("h", (), buckets=(1, 2, 5))
    for value in (0.5, 1.0, 3.0, 100.0):
        hist.observe(value)
    # counts: <=1, <=2, <=5, overflow
    assert hist.counts == [2, 0, 1, 1]
    assert hist.count == 4
    assert hist.min == 0.5 and hist.max == 100.0
    assert hist.mean == pytest.approx((0.5 + 1.0 + 3.0 + 100.0) / 4)


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ValueError):
        Histogram("h", (), buckets=(2, 1))
    with pytest.raises(ValueError):
        Histogram("h", (), buckets=())


def test_default_buckets_resolve_reordering_tail():
    assert DEFAULT_BUCKETS == (1, 2, 3, 5, 8, 13, 21, 34, 55, 89)


def test_timeseries_parallel_arrays_and_bisect():
    series = Timeseries("t", ())
    for time in (0.0, 1.0, 2.0, 3.0):
        series.append(time, time * 10)
    assert len(series) == 4
    assert series.last == 30.0
    assert series.sample_at_or_before(1.5) == (1.0, 10.0)
    assert series.sample_at_or_before(3.0) == (3.0, 30.0)
    assert series.sample_at_or_before(-1.0) == (0.0, 0.0)


def test_empty_timeseries_lookup_raises():
    with pytest.raises(ValueError):
        Timeseries("t", ()).sample_at_or_before(1.0)


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------
def test_to_records_has_stable_shape():
    registry = MetricsRegistry()
    registry.counter("c", link="l").inc()
    registry.timeseries("t", flow=1).append(1.0, 2.0)
    records = registry.to_records()
    assert [r["record"] for r in records] == ["metric", "metric"]
    counter_record = records[0]
    assert counter_record == {
        "record": "metric",
        "kind": "counter",
        "name": "c",
        "labels": {"link": "l"},
        "value": 1.0,
    }
    series_record = records[1]
    assert series_record["times"] == [1.0]
    assert series_record["values"] == [2.0]


def test_summaries_keyed_by_name_and_labels():
    registry = MetricsRegistry()
    registry.timeseries("flow.cwnd", flow=1, variant="tcp-pr").append(0.0, 2.0)
    summaries = registry.summaries()
    assert summaries == {
        "flow.cwnd{flow=1,variant=tcp-pr}": {
            "kind": "timeseries",
            "n": 1,
            "last": 2.0,
            "min": 2.0,
            "max": 2.0,
        }
    }

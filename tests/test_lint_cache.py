"""Incremental-cache behavior of ``repro lint`` plus the CLI contract
(exit codes, SARIF output, stats channel).

The cache tests drive :func:`repro.lint.run_analysis` over a synthetic
three-module call chain (``c -> b -> a``) with a cache dir in
``tmp_path``: a second identical run must do zero re-analysis, and an
edit must invalidate exactly the edited module plus its transitive
dependents — nothing else.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.lint import run_analysis, to_sarif
from repro.lint.findings import Finding

REPO_ROOT = Path(__file__).resolve().parent.parent
CLI_ENV = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}

CHAIN = {
    "src/repro/core/a.py": """
        def base(x):
            return x + 1
    """,
    "src/repro/core/b.py": """
        from repro.core.a import base


        def mid(x):
            return base(x)
    """,
    "src/repro/core/c.py": """
        from repro.core.b import mid


        def top(x):
            return mid(x)
    """,
}


def write_chain(tmp_path):
    for rel, content in CHAIN.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content))
    return tmp_path / "src" / "repro"


def analyze(pkg, cache_dir):
    result = run_analysis(
        [str(pkg)],
        deep=True,
        use_cache=True,
        cache_dir=str(cache_dir),
        jobs=1,
    )
    assert not result.errors, result.errors
    return result


def test_second_run_does_no_reanalysis(tmp_path):
    pkg = write_chain(tmp_path)
    cache_dir = tmp_path / "cache"

    cold = analyze(pkg, cache_dir)
    assert cold.stats.parse_misses == 3
    assert cold.stats.parse_hits == 0
    assert cold.stats.deep_misses > 0

    warm = analyze(pkg, cache_dir)
    assert warm.stats.parse_hits == 3
    assert warm.stats.parse_misses == 0
    assert warm.stats.deep_misses == 0
    assert warm.stats.reanalyzed == []
    # Identical results either way.
    cold_records = [f.to_record() for f in cold.findings]
    warm_records = [f.to_record() for f in warm.findings]
    assert warm_records == cold_records


def test_edit_invalidates_only_transitive_dependents(tmp_path):
    pkg = write_chain(tmp_path)
    cache_dir = tmp_path / "cache"
    analyze(pkg, cache_dir)

    # Editing the leaf everyone depends on re-analyzes the whole chain.
    leaf = pkg / "core" / "a.py"
    leaf.write_text(leaf.read_text() + "\n\ndef extra():\n    return 0\n")
    after_leaf = analyze(pkg, cache_dir)
    assert after_leaf.stats.parse_misses == 1  # only a.py re-parsed
    assert sorted(after_leaf.stats.reanalyzed) == [
        "core/a.py",
        "core/b.py",
        "core/c.py",
    ]

    # Editing the top of the chain touches nothing else.
    top = pkg / "core" / "c.py"
    top.write_text(top.read_text() + "\n\ndef extra_top():\n    return 0\n")
    after_top = analyze(pkg, cache_dir)
    assert after_top.stats.parse_misses == 1
    assert after_top.stats.reanalyzed == ["core/c.py"]


def test_cache_disabled_reports_all_misses(tmp_path):
    pkg = write_chain(tmp_path)
    result = run_analysis(
        [str(pkg)], deep=True, use_cache=False, jobs=1
    )
    assert not result.stats.enabled
    assert result.stats.parse_hits == 0
    assert result.stats.deep_hits == 0


# ----------------------------------------------------------------------
# CLI contract: exit codes, SARIF, stats
# ----------------------------------------------------------------------
def test_cli_exit_two_on_internal_error(tmp_path, monkeypatch, capsys):
    import repro.lint
    from repro import cli
    from repro.lint.deep import AnalysisResult

    def broken(paths, **kwargs):
        return AnalysisResult(errors=["src/repro/x.py: ValueError: boom"])

    monkeypatch.setattr(repro.lint, "run_analysis", broken)
    rc = cli.main(["lint", str(tmp_path)])
    assert rc == 2
    assert "lint internal error" in capsys.readouterr().err


def test_cli_sarif_output_and_stats(tmp_path):
    bad = tmp_path / "repro" / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import random\nx = random.random()\n")
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro", "lint", str(tmp_path),
            "--format", "sarif", "--no-cache", "--stats",
        ],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
        env=CLI_ENV,
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    sarif = json.loads(proc.stdout)
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    # The catalog ships both the shallow and the deep families.
    assert {"REP101", "REP111", "REP401", "REP402", "REP403"} <= rule_ids
    results = run["results"]
    assert any(r["ruleId"] == "REP101" for r in results)
    region = results[0]["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] >= 1
    assert region["startColumn"] >= 1
    stats_lines = [
        line for line in proc.stderr.splitlines()
        if line.startswith("lint-stats: ")
    ]
    assert len(stats_lines) == 1
    stats = json.loads(stats_lines[0][len("lint-stats: "):])
    assert stats["enabled"] is False


def test_to_sarif_embeds_trace_in_message():
    finding = Finding(
        rule="taint-state",
        code="REP111",
        path="src/repro/tcp/x.py",
        line=5,
        col=8,
        message="nondeterministic value stored in component state",
        trace=("via jitter() at src/repro/tcp/y.py:7",),
    )
    sarif = to_sarif([finding])
    result = sarif["runs"][0]["results"][0]
    assert result["ruleId"] == "REP111"
    assert "via jitter()" in result["message"]["text"]
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region == {"startLine": 5, "startColumn": 9}

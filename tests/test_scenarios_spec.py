"""Tests for ScenarioSpec: JSON round-trips, seed derivation, and the
figure specs' ``scenario`` properties."""

import json

import pytest

from repro.experiments.fig2_fairness import Fig2Spec
from repro.experiments.fig3_cov import Fig3Spec
from repro.experiments.fig4_params import Fig4Spec
from repro.experiments.fig6_multipath import Fig6Spec
from repro.experiments.fig7_faults import Fig7Spec
from repro.scenarios import SCENARIO_SCHEMA, ScenarioSpec, WorkloadSpec
from repro.sim.rng import derive_child_seed
from repro.topologies import (
    DumbbellSpec,
    FatTreeSpec,
    ParkingLotSpec,
    WanMeshSpec,
)


def _scenario(**overrides):
    params = dict(
        topology=FatTreeSpec(k=4),
        workload=WorkloadSpec(arrival_rate=5.0, max_flows=20),
        duration=10.0,
        seed=3,
        name="test",
    )
    params.update(overrides)
    return ScenarioSpec(**params)


@pytest.mark.parametrize(
    "topology",
    [DumbbellSpec(num_pairs=3), ParkingLotSpec(), FatTreeSpec(k=4, seed=2),
     WanMeshSpec(sites=5)],
)
def test_scenario_json_round_trip(topology):
    scenario = _scenario(topology=topology)
    data = json.loads(json.dumps(scenario.to_jsonable()))
    assert data["schema"] == SCENARIO_SCHEMA
    assert ScenarioSpec.from_jsonable(data) == scenario


def test_scenario_save_load(tmp_path):
    scenario = _scenario()
    path = scenario.save(tmp_path / "spec.json")
    assert ScenarioSpec.load(path) == scenario


def test_scenario_rejects_unknown_schema():
    data = _scenario().to_jsonable()
    data["schema"] = "repro.scenario/v999"
    with pytest.raises(ValueError):
        ScenarioSpec.from_jsonable(data)


def test_scenario_rejects_nonpositive_duration():
    with pytest.raises(ValueError):
        _scenario(duration=0.0)


def test_workload_seed_is_derived_from_scenario_seed():
    scenario = _scenario(seed=42)
    assert scenario.workload_seed() == derive_child_seed(
        42, "scenario/workload"
    )
    assert scenario.with_seed(43).workload_seed() != scenario.workload_seed()


def test_flows_use_topology_endpoints():
    scenario = _scenario(topology=DumbbellSpec(num_pairs=2))
    flows = list(scenario.flows())
    assert flows
    assert scenario.flow_count() == len(flows)
    senders, receivers = scenario.topology.endpoints()
    for flow in flows:
        assert flow.src in senders
        assert flow.dst in receivers


def test_with_seed_changes_population():
    scenario = _scenario(topology=DumbbellSpec(num_pairs=2))
    a = [flow.to_jsonable() for flow in scenario.flows()]
    b = [flow.to_jsonable() for flow in scenario.with_seed(99).flows()]
    assert a != b


# ----------------------------------------------------------------------
# Figure specs expose their setup as scenarios
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "spec_cls, kind",
    [
        (Fig2Spec, "dumbbell"),
        (Fig3Spec, "dumbbell"),
        (Fig4Spec, "dumbbell"),
        (Fig6Spec, "multipath-mesh"),
        (Fig7Spec, "multipath-mesh"),
    ],
)
def test_figure_specs_expose_scenarios(spec_cls, kind):
    spec = spec_cls(seed=5)
    scenario = spec.scenario
    assert isinstance(scenario, ScenarioSpec)
    assert scenario.name == spec_cls.name
    assert scenario.seed == 5
    assert type(scenario.topology).kind == kind
    data = json.loads(json.dumps(scenario.to_jsonable()))
    assert ScenarioSpec.from_jsonable(data) == scenario
    assert scenario.flow_count() >= 1


def test_fig2_scenario_tracks_largest_cell():
    spec = Fig2Spec(flow_counts=(4, 16), seed=1)
    scenario = spec.scenario
    assert scenario.workload.flow_count == 16
    assert scenario.workload.size == "bulk"
    assert dict(scenario.workload.variant_mix) == {"tcp-pr": 1.0, "sack": 1.0}


def test_fig3_scenario_uses_parking_lot_when_selected():
    scenario = Fig3Spec(topology="parking-lot").scenario
    assert type(scenario.topology).kind == "parking-lot"


def test_fig6_scenario_single_bulk_flow():
    scenario = Fig6Spec(protocols=("tcp-pr", "sack")).scenario
    assert scenario.workload.flow_count == 1
    assert scenario.workload.variant_mix == (("tcp-pr", 1.0),)

"""Golden-seed gate for the hot-path overhaul (see ``goldenlib.py``).

Every fixed-seed workload — the five figure cells and the six
timer-coalescing edge cases — must reproduce the payload captured from
the *seed* implementation bit-for-bit.  JSON float round-trips are
exact, so ``==`` on the decoded payloads is a bit-identicality check:
any drift in event ordering, timer arithmetic, or RNG stream
consumption shows up as a diff here before it shows up in a figure.

The structural tests pin the coalescing invariant itself: however many
packets are in flight, a flow owns at most ONE live drop-check event
and a NewReno-family sender at most ONE live RTO event.
"""

from __future__ import annotations

import json

import pytest

import conftest
import goldenlib

GOLDENS = goldenlib.load_goldens()


@pytest.mark.parametrize("name", sorted(goldenlib.WORKLOADS))
def test_bit_identical_to_seed(name, engine):
    # The `engine` fixture runs every golden under BOTH hot-core builds
    # (compiled leg skips when the extension is absent): the compiled
    # engine must be bit-identical to the seed, not merely to pure.
    assert name in GOLDENS, (
        f"no committed golden for {name!r} — regenerate with "
        f"PYTHONPATH=src:tests python tests/goldenlib.py"
    )
    # Round-trip through JSON so tuples/lists and float repr normalize
    # exactly the way the committed file did.
    produced = json.loads(json.dumps(goldenlib.WORKLOADS[name]()))
    assert produced == GOLDENS[name]


def _live_labels(sim):
    """Labels of events still pending in the heap (cancelled excluded)."""
    labels = []
    for _time, _seq, target, _args, label in sim._heap:
        callback = getattr(target, "callback", target)
        if callback is not None:
            labels.append(label)
    return labels


def test_pr_flow_owns_one_drop_timer(engine):
    flow = conftest.make_flow("tcp-pr", seed=41)
    flow.run(until=5.0)
    assert flow.sender.to_be_ack, "flow went idle; nothing is guarded"
    live = _live_labels(flow.network.sim)
    assert live.count("pr timer f1") == 1, (
        f"expected exactly one coalesced drop timer, heap holds: {live}"
    )


def test_newreno_flow_owns_one_rto_timer(engine):
    flow = conftest.make_flow("newreno", seed=43)
    flow.run(until=5.0)
    live = _live_labels(flow.network.sim)
    assert live.count("rto f1") <= 1, (
        f"expected at most one live RTO event, heap holds: {live}"
    )

"""Behavioural tests for the DSACK undo + dupthresh mitigation variants."""

import pytest

from repro.net.lossgen import DeterministicLoss
from repro.tcp.dsack_response import (
    EwmaPolicy,
    IncrementByOnePolicy,
    IncrementToAveragePolicy,
    NoMitigationPolicy,
)

from conftest import make_flow
from test_tdfr import make_reordering_tcp_flow


# ----------------------------------------------------------------------
# Policy arithmetic
# ----------------------------------------------------------------------
def test_no_mitigation_keeps_dupthresh():
    assert NoMitigationPolicy().adjust(3, 17) == 3


def test_increment_by_one():
    policy = IncrementByOnePolicy()
    assert policy.adjust(3, 17) == 4
    assert policy.adjust(4, 99) == 5


def test_increment_by_custom_step():
    assert IncrementByOnePolicy(step=2).adjust(3, 17) == 5


def test_increment_to_average():
    policy = IncrementToAveragePolicy()
    assert policy.adjust(3, 17) == 10
    assert policy.adjust(10, 11) == 11  # ceil(10.5)


def test_ewma_policy_moves_toward_event_lengths():
    policy = EwmaPolicy(gain=0.5)
    first = policy.adjust(3, 19)   # 0.5*3 + 0.5*19 = 11
    assert first == 11
    second = policy.adjust(first, 19)  # 0.5*11 + 0.5*19 = 15
    assert second == 15


def test_ewma_validates_gain():
    with pytest.raises(ValueError):
        EwmaPolicy(gain=0.0)
    with pytest.raises(ValueError):
        EwmaPolicy(gain=1.5)


# ----------------------------------------------------------------------
# Sender behaviour
# ----------------------------------------------------------------------
def test_real_loss_behaves_like_sack():
    flow = make_flow("dsack-nm", data_loss=DeterministicLoss([40]))
    flow.run(until=10.0)
    stats = flow.sender.stats
    assert stats.fast_retransmits == 1
    assert stats.spurious_retransmits_detected == 0
    assert flow.delivered > 800


def test_spurious_retransmit_detected_and_undone():
    """Under pure reordering, fast retransmits are spurious; the DSACK
    from the receiver must trigger the undo."""
    net, sender, receiver = make_reordering_tcp_flow("dsack-nm")
    net.run(until=10.0)
    assert sender.stats.fast_retransmits > 0, "reordering must cause FRs"
    assert sender.stats.spurious_retransmits_detected > 0
    assert sender.stats.extra["undos"] > 0


def test_nm_keeps_dupthresh_at_three():
    net, sender, receiver = make_reordering_tcp_flow("dsack-nm")
    net.run(until=10.0)
    assert sender.dupthresh == 3


def test_inc_by_1_raises_dupthresh():
    net, sender, receiver = make_reordering_tcp_flow("inc-by-1")
    net.run(until=10.0)
    assert sender.stats.spurious_retransmits_detected > 0
    assert sender.dupthresh > 3


def test_inc_by_n_and_ewma_track_reorder_lengths():
    """The averaging policies move dupthresh toward the observed
    reordering-event lengths (which exceed 3 under persistent two-path
    reordering), so after undos dupthresh must have adapted upward."""
    for variant in ("inc-by-n", "ewma"):
        net, sender, _ = make_reordering_tcp_flow(variant)
        net.run(until=10.0)
        assert sender.stats.extra["undos"] > 0, f"{variant}: no undo happened"
        assert sender.dupthresh > 3, f"{variant}: dupthresh did not adapt"


def test_mitigation_beats_nm_under_reordering():
    """Raising dupthresh avoids repeat spurious FRs, so the mitigating
    variants outperform DSACK-NM under persistent reordering (the ε≈0
    ordering in Figure 6)."""
    net, _, nm_receiver = make_reordering_tcp_flow("dsack-nm")
    net.run(until=10.0)
    net2, _, inc_receiver = make_reordering_tcp_flow("inc-by-1")
    net2.run(until=10.0)
    assert inc_receiver.delivered > nm_receiver.delivered


def test_undo_restores_ssthresh_toward_prior_cwnd():
    net, sender, receiver = make_reordering_tcp_flow("dsack-nm")
    net.run(until=5.0)
    if sender.stats.extra["undos"] > 0:
        assert sender.ssthresh >= 2.0


def test_dupthresh_capped():
    net, sender, receiver = make_reordering_tcp_flow("inc-by-n")
    sender.max_dupthresh = 5
    net.run(until=10.0)
    assert sender.dupthresh <= 5

"""Engine selection (:mod:`repro.core.engine_select`; docs/COMPILED.md).

The contract under test:

* precedence — explicit :func:`activate` argument > ``REPRO_ENGINE`` >
  ``auto``; unknown modes fail loudly at resolution time;
* ``auto`` silently falls back to the pure build, ``compiled`` raises
  an *actionable* :class:`EngineUnavailableError` (the message must
  carry the build command) instead of silently degrading;
* selection is late-bound per construction: :func:`use_engine` switches
  the classes new ``Simulator()`` calls produce and restores the prior
  selection — including the environment variable — on exit;
* pickles are engine-portable: an instance pickled under either build
  loads as an instance of whichever build is active at load time.
"""

from __future__ import annotations

import os
import pickle  # lint: allow-pickle(exercises the engine-portable pickle round-trip on purpose)

import pytest

from repro.core import engine_select
from repro.sim.engine import Simulator

needs_compiled = pytest.mark.skipif(
    not engine_select.compiled_available(),
    reason=f"compiled extension not built (`{engine_select.BUILD_HINT}`)",
)


# ----------------------------------------------------------------------
# Mode resolution and precedence
# ----------------------------------------------------------------------
def test_resolve_mode_defaults_to_auto(monkeypatch):
    monkeypatch.delenv(engine_select.ENV_VAR, raising=False)
    assert engine_select.resolve_mode() == "auto"


def test_resolve_mode_env_var(monkeypatch):
    monkeypatch.setenv(engine_select.ENV_VAR, "pure")
    assert engine_select.resolve_mode() == "pure"


def test_resolve_mode_explicit_beats_env(monkeypatch):
    monkeypatch.setenv(engine_select.ENV_VAR, "pure")
    assert engine_select.resolve_mode("auto") == "auto"


@pytest.mark.parametrize("source", ["argument", "environment"])
def test_unknown_mode_fails_loudly(monkeypatch, source):
    if source == "argument":
        with pytest.raises(ValueError, match="unknown engine mode"):
            engine_select.resolve_mode("fast")
    else:
        monkeypatch.setenv(engine_select.ENV_VAR, "fast")
        with pytest.raises(ValueError, match=engine_select.ENV_VAR):
            engine_select.resolve_mode()


# ----------------------------------------------------------------------
# The `compiled` mode must never silently fall back
# ----------------------------------------------------------------------
def _pretend_extension_missing(monkeypatch):
    monkeypatch.setattr(engine_select, "_compiled_classes", None)
    monkeypatch.setattr(
        engine_select,
        "_compiled_import_error",
        "ModuleNotFoundError: No module named 'repro._cext._core'",
    )


def test_compiled_without_extension_is_an_actionable_error(monkeypatch):
    """Demanding the compiled build on a pure-only checkout must raise —
    not silently hand back the slow path — and the error must tell the
    user exactly how to build the extension."""
    _pretend_extension_missing(monkeypatch)
    with pytest.raises(engine_select.EngineUnavailableError) as excinfo:
        engine_select.activate("compiled")
    message = str(excinfo.value)
    assert engine_select.BUILD_HINT in message
    assert engine_select.EXTENSION_MODULE in message
    assert "pure" in message  # points at the fallback modes too


def test_auto_without_extension_falls_back_silently(monkeypatch):
    _pretend_extension_missing(monkeypatch)
    with engine_select.use_engine("auto") as info:
        assert info.name == "pure"
        assert info.fallback_reason is not None
        assert type(Simulator()) is Simulator


# ----------------------------------------------------------------------
# Late-bound construction and restoration
# ----------------------------------------------------------------------
def test_pure_mode_constructs_exactly_the_pure_class():
    with engine_select.use_engine("pure"):
        sim = Simulator()
    assert type(sim) is Simulator


def test_use_engine_restores_env(monkeypatch):
    monkeypatch.delenv(engine_select.ENV_VAR, raising=False)
    with engine_select.use_engine("pure"):
        assert os.environ[engine_select.ENV_VAR] == "pure"
    assert engine_select.ENV_VAR not in os.environ


@needs_compiled
def test_compiled_mode_constructs_a_compiled_subclass():
    with engine_select.use_engine("compiled") as info:
        sim = Simulator()
        assert info.name == "compiled"
        assert info.extension  # path of the loaded .so
    assert isinstance(sim, Simulator)
    assert type(sim) is not Simulator
    assert type(sim).__module__ == engine_select.EXTENSION_MODULE


@needs_compiled
def test_selection_is_per_construction():
    """Instances keep their build; only *new* constructions follow the
    active selection."""
    with engine_select.use_engine("pure"):
        pure_sim = Simulator()
        with engine_select.use_engine("compiled"):
            compiled_sim = Simulator()
        again = Simulator()
    assert type(pure_sim) is Simulator
    assert type(again) is Simulator
    assert type(compiled_sim) is not Simulator


# ----------------------------------------------------------------------
# Engine-portable pickling
# ----------------------------------------------------------------------
def _run_a_little(sim):
    # print is picklable by reference; the callback must survive the
    # round trip alongside the heap entry that carries it.
    sim.post(0.5, print, ("early",))
    sim.post(1.0, print, ("late",))
    sim.run(until=0.75)
    return sim


@needs_compiled
@pytest.mark.parametrize("src", ["pure", "compiled"])
@pytest.mark.parametrize("dst", ["pure", "compiled"])
def test_pickles_load_on_either_build(src, dst):
    with engine_select.use_engine(src):
        payload = pickle.dumps(_run_a_little(Simulator()))
    with engine_select.use_engine(dst):
        sim = pickle.loads(payload)
    if dst == "pure":
        assert type(sim) is Simulator
    else:
        assert type(sim).__module__ == engine_select.EXTENSION_MODULE
    assert sim.now == 0.75
    assert len(sim._heap) == 1  # the 1.0 s event survived the round trip
    sim.run(until=2.0)
    assert sim.now == 2.0
    # One event fired pre-pickle, the survivor fires post-load; the
    # counter accumulates across runs and must survive the round trip.
    assert sim.dispatched_events == 2

"""Tests for the experiment harness (small, fast configurations)."""

import pytest

from repro.exec.spec import Scale
from repro.experiments.fig2_fairness import (
    Fig2Result,
    Fig2Spec,
    format_fig2,
    run_fig2,
)
from repro.experiments.fig3_cov import Fig3Spec, format_fig3, run_fig3
from repro.experiments.fig4_params import (
    BetaSweepSpec,
    Fig4Spec,
    format_beta_sweep,
    format_fig4,
    run_extreme_loss_beta_sweep,
    run_fig4,
)
from repro.experiments.fig6_multipath import (
    Fig6Spec,
    format_fig6,
    run_fig6,
    run_single_multipath_flow,
)
from repro.experiments.runner import (
    build_fairness_scenario,
    run_fairness,
    run_fairness_scenario,
)


def test_build_fairness_scenario_structure():
    scenario = build_fairness_scenario(topology="dumbbell", total_flows=4)
    assert len(scenario.flows) == 4
    variants = [flow.variant for flow in scenario.flows]
    assert variants.count("tcp-pr") == 2
    assert variants.count("sack") == 2
    assert scenario.bottleneck_links == ["r0->r1"]
    assert not scenario.cross_flows


def test_parking_lot_scenario_has_cross_traffic():
    scenario = build_fairness_scenario(topology="parking-lot", total_flows=2)
    assert len(scenario.cross_flows) == 6
    assert len(scenario.bottleneck_links) == 3


def test_fairness_scenario_validates_flow_count():
    with pytest.raises(ValueError):
        build_fairness_scenario(total_flows=3)
    with pytest.raises(ValueError):
        build_fairness_scenario(total_flows=0)


def test_fairness_scenario_rejects_unknown_topology():
    with pytest.raises(ValueError):
        build_fairness_scenario(topology="torus")


def test_run_fairness_produces_metrics():
    result = run_fairness(
        topology="dumbbell", total_flows=4, duration=6.0, measure_window=4.0
    )
    assert set(result.throughputs) == {"tcp-pr", "sack"}
    assert len(result.normalized["tcp-pr"]) == 2
    assert result.loss_rate >= 0.0
    # Weighted mean of the mean normalized throughputs is 1 by definition.
    weighted = (
        result.mean_normalized["tcp-pr"] * 2 + result.mean_normalized["sack"] * 2
    ) / 4
    assert weighted == pytest.approx(1.0)
    assert result.mean_mbps("sack") > 0


def test_run_fairness_validates_window():
    with pytest.raises(ValueError):
        run_fairness(duration=5.0, measure_window=5.0)


def test_fig2_quick():
    result = run_fig2(
        Fig2Spec.presets(
            Scale.QUICK, flow_counts=(4,), duration=6.0, measure_window=4.0
        )
    )
    assert isinstance(result, Fig2Result)
    assert 4 in result.results
    text = format_fig2(result)
    assert "tcp-pr" in text.lower() or "Figure 2" in text
    series = result.series("tcp-pr")
    assert len(series) == 1


def test_fig3_quick():
    result = run_fig3(
        Fig3Spec.presets(
            Scale.QUICK,
            bandwidths_mbps=(6.0,),
            total_flows=4,
            duration=6.0,
            measure_window=4.0,
        )
    )
    assert len(result.points) == 1
    point = result.points[0]
    assert point.bandwidth_mbps == 6.0
    assert "tcp-pr" in point.cov
    assert "Figure 3" in format_fig3(result)


def test_fig4_quick():
    result = run_fig4(
        Fig4Spec.presets(
            Scale.QUICK,
            alphas=(0.995,),
            betas=(3.0,),
            total_flows=4,
            duration=6.0,
            measure_window=4.0,
        )
    )
    assert (0.995, 3.0) in result.sack_surface
    assert result.sack_surface[(0.995, 3.0)] > 0
    assert "Figure 4" in format_fig4(result)


def test_beta_sweep_quick():
    points = run_extreme_loss_beta_sweep(
        BetaSweepSpec.presets(
            Scale.QUICK,
            betas=(3.0,),
            total_flows=4,
            duration=6.0,
            measure_window=4.0,
        )
    )
    assert len(points) == 1
    assert points[0].loss_rate >= 0
    assert "beta" in format_beta_sweep(points)


def test_fig6_single_cell():
    mbps = run_single_multipath_flow("tcp-pr", epsilon=500.0, duration=4.0)
    assert 1.0 < mbps <= 10.5  # single 10 Mbps path


def test_fig6_quick_panel():
    result = run_fig6(
        Fig6Spec.presets(
            Scale.QUICK, protocols=("tcp-pr",), epsilons=(0.0, 500.0),
            duration=4.0,
        )
    )
    row = result.throughput_mbps["tcp-pr"]
    assert set(row) == {0.0, 500.0}
    assert "Figure 6" in format_fig6(result)


def test_fig6_multipath_beats_single_path_for_tcp_pr():
    result = run_fig6(
        Fig6Spec.presets(
            Scale.QUICK, protocols=("tcp-pr",), epsilons=(0.0, 500.0),
            duration=8.0,
        )
    )
    row = result.throughput_mbps["tcp-pr"]
    assert row[0.0] > row[500.0]


def test_experiments_are_deterministic():
    """The seeded RNG discipline: the same configuration twice yields
    bit-identical results."""
    first = run_single_multipath_flow("tcp-pr", epsilon=0.0, duration=5.0, seed=9)
    second = run_single_multipath_flow("tcp-pr", epsilon=0.0, duration=5.0, seed=9)
    assert first == second
    different = run_single_multipath_flow(
        "tcp-pr", epsilon=0.0, duration=5.0, seed=10
    )
    assert different != first  # the seed really flows through

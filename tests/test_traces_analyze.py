"""Unit tests for the pcap-style trace analyzer (repro.traces.analyze).

Hand-built event streams with known ground truth: every metric the
analyzer reports is checked against values computable by eye.
"""

import pytest

from repro.traces import analyze_records, format_report
from repro.traces.analyze import DUPACK_THRESHOLD


def _trace(time, kind, seq, *, packet_kind="data", ack=-1, uid=None,
           flow=1, flow_seq=0, retransmit=False, where=""):
    return {
        "record": "trace", "time": time, "kind": kind, "where": where,
        "packet_uid": uid if uid is not None else int(time * 1e6),
        "flow_id": flow, "flow_seq": flow_seq, "packet_kind": packet_kind,
        "seq": seq, "ack": ack, "retransmit": retransmit, "path": None,
    }


def _with_flow_seq(records):
    for index, record in enumerate(records):
        record["flow_seq"] = index
    return records


# ----------------------------------------------------------------------
# Reordering metrics (RFC 4737 at segment granularity)
# ----------------------------------------------------------------------
def test_in_order_stream_has_no_reordering():
    records = _with_flow_seq(
        [_trace(0.1 * i, "recv", i, uid=i) for i in range(10)]
    )
    report = analyze_records(records).flow(1)
    assert report.reordered == 0
    assert report.reorder_ratio == 0.0
    assert report.extent_histogram == [10]
    assert report.reorder_density() == [1.0]


def test_single_swap_extent_and_late_offset():
    # Arrivals: 0, 2, 1 — seq 1 is displaced by one position; the first
    # greater-seq arrival (2) landed at t=0.2, seq 1 at t=0.35.
    records = _with_flow_seq([
        _trace(0.10, "recv", 0, uid=0),
        _trace(0.20, "recv", 2, uid=2),
        _trace(0.35, "recv", 1, uid=1),
    ])
    report = analyze_records(records).flow(1)
    assert report.reordered == 1
    assert report.extents == [1]
    assert report.displacements == [1]
    assert report.late_offsets == [pytest.approx(0.15)]
    assert report.extent_histogram == [2, 1]


def test_extent_counts_positions_not_sequence_gap():
    # Arrivals: 1, 2, 3, 0 — seq 0 arrives 3 positions after seq 1 (the
    # earliest greater-seq arrival), so extent = 3; displacement in
    # sequence space = max_seen - seq = 3.
    records = _with_flow_seq([
        _trace(0.1, "recv", 1, uid=1),
        _trace(0.2, "recv", 2, uid=2),
        _trace(0.3, "recv", 3, uid=3),
        _trace(0.4, "recv", 0, uid=0),
    ])
    report = analyze_records(records).flow(1)
    assert report.extents == [3]
    assert report.displacements == [3]
    assert report.reorder_ratio == pytest.approx(1 / 4)


def test_retransmit_fills_are_not_reordering():
    # Hole at seq 1 filled by a segment flagged as a retransmission:
    # loss recovery, not reordering.
    records = _with_flow_seq([
        _trace(0.1, "recv", 0, uid=0),
        _trace(0.2, "recv", 2, uid=2),
        _trace(0.5, "recv", 1, uid=9, retransmit=True),
    ])
    report = analyze_records(records).flow(1)
    assert report.reordered == 0
    assert report.late_originals == 0
    assert report.retransmit_fills == 1


def test_duplicate_arrivals_are_counted_separately():
    records = _with_flow_seq([
        _trace(0.1, "recv", 0, uid=0),
        _trace(0.2, "recv", 0, uid=1),
        _trace(0.3, "recv", 1, uid=2),
    ])
    report = analyze_records(records).flow(1)
    assert report.unique_arrivals == 2
    assert report.duplicate_arrivals == 1


# ----------------------------------------------------------------------
# Duplicate ACKs
# ----------------------------------------------------------------------
def test_dupack_run_detection():
    acks = [1, 1, 1, 1, 2, 3, 3]  # one run of 3 dupacks, one lone dupack
    records = _with_flow_seq([
        _trace(0.1 * i, "recv", -1, packet_kind="ack", ack=a, uid=100 + i)
        for i, a in enumerate(acks)
    ])
    report = analyze_records(records).flow(1)
    assert report.dupacks == 4
    assert report.dupack_events == 1
    assert DUPACK_THRESHOLD == 3


# ----------------------------------------------------------------------
# Retransmission phases and interruptions
# ----------------------------------------------------------------------
def test_retransmission_phases_cluster_by_gap():
    sends = (
        [_trace(0.0 + 0.1 * i, "send", i, uid=i) for i in range(3)]
        + [_trace(1.0, "send", 0, uid=10, retransmit=True),
           _trace(1.2, "send", 1, uid=11, retransmit=True)]
        + [_trace(5.0, "send", 2, uid=12, retransmit=True)]
    )
    report = analyze_records(
        _with_flow_seq(sends), phase_gap=1.0
    ).flow(1)
    assert report.retransmits == 3
    assert len(report.phases) == 2
    first, second = report.phases
    assert (first.start, first.end, first.segments) == (1.0, 1.2, 2)
    assert (second.start, second.end, second.segments) == (5.0, 5.0, 1)


def test_connection_interruption_detection():
    times = [0.1 * i for i in range(20)] + [10.0, 10.1]
    records = _with_flow_seq([
        _trace(t, "recv", i, uid=i) for i, t in enumerate(times)
    ])
    report = analyze_records(records, interruption_gap=2.0).flow(1)
    assert len(report.interruptions) == 1
    gap = report.interruptions[0]
    assert gap.start == pytest.approx(1.9)
    assert gap.end == pytest.approx(10.0)
    assert gap.duration == pytest.approx(8.1)


# ----------------------------------------------------------------------
# RTT and throughput sample streams
# ----------------------------------------------------------------------
def test_rtt_samples_match_send_ack_pairs():
    records = _with_flow_seq([
        _trace(0.0, "send", 0, uid=0),
        _trace(1.0, "send", 1, uid=1),
        _trace(0.08, "recv", -1, packet_kind="ack", ack=1, uid=100),
        _trace(1.09, "recv", -1, packet_kind="ack", ack=2, uid=101),
    ])
    report = analyze_records(records).flow(1)
    rtts = [rtt for _, rtt in report.rtt_samples]
    assert rtts == [pytest.approx(0.08), pytest.approx(0.09)]


def test_rtt_skips_retransmitted_seqs():
    # Karn's rule: seq 0 was retransmitted, so its ACK is ambiguous.
    records = _with_flow_seq([
        _trace(0.0, "send", 0, uid=0),
        _trace(0.5, "send", 0, uid=1, retransmit=True),
        _trace(0.6, "recv", -1, packet_kind="ack", ack=1, uid=100),
    ])
    report = analyze_records(records).flow(1)
    assert report.rtt_samples == []


def test_throughput_samples_bucket_unique_deliveries():
    # 4 unique arrivals over 2 s in 1 s windows: 2 segments each.
    records = _with_flow_seq([
        _trace(0.1, "recv", 0, uid=0),
        _trace(0.6, "recv", 1, uid=1),
        _trace(1.2, "recv", 2, uid=2),
        _trace(1.2, "recv", 2, uid=3),  # duplicate: not goodput
        _trace(1.8, "recv", 3, uid=4),
    ])
    report = analyze_records(records, throughput_window=1.0).flow(1)
    mbps = [value for _, value in report.throughput_samples]
    assert mbps == [pytest.approx(0.016), pytest.approx(0.016)]


# ----------------------------------------------------------------------
# Report plumbing
# ----------------------------------------------------------------------
def test_report_jsonable_and_format():
    records = _with_flow_seq([
        _trace(0.1, "recv", 0, uid=0),
        _trace(0.2, "recv", 2, uid=2),
        _trace(0.3, "recv", 1, uid=1),
    ])
    report = analyze_records(records)
    jsonable = report.to_jsonable()
    assert jsonable["flows"]["flow=1"]["reordered"] == 1
    text = format_report(report)
    assert "flow=1" in text
    assert "reordered=1" in text


def test_drop_events_counted():
    records = _with_flow_seq([
        _trace(0.0, "send", 0, uid=0),
        _trace(0.1, "drop", 0, uid=0, where="a->b"),
    ])
    report = analyze_records(records).flow(1)
    assert report.dropped_packets == 1
    assert report.segments_sent == 1

"""Unit tests for TCP-PR's ewrtt/mxrtt estimator (Section 3.1)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.estimator import MaxRttEstimator, newton_fractional_root


# ----------------------------------------------------------------------
# Newton's method for alpha**(1/cwnd) (footnote 5)
# ----------------------------------------------------------------------
def test_newton_exact_at_cwnd_one():
    # x^1 = alpha converges in one step regardless of iterations.
    assert newton_fractional_root(0.995, 1.0, 2) == pytest.approx(0.995)


def test_newton_two_iterations_close_to_exact():
    # The paper uses n = 2; for alpha near 1 this is very accurate.
    for cwnd in (1.0, 2.0, 5.0, 17.3, 100.0):
        exact = 0.995 ** (1.0 / cwnd)
        approx = newton_fractional_root(0.995, cwnd, 2)
        assert approx == pytest.approx(exact, rel=1e-6)


def test_newton_more_iterations_improve():
    cwnd, alpha = 50.0, 0.5
    exact = alpha ** (1.0 / cwnd)
    err2 = abs(newton_fractional_root(alpha, cwnd, 2) - exact)
    err4 = abs(newton_fractional_root(alpha, cwnd, 4) - exact)
    assert err4 <= err2


def test_newton_validates_inputs():
    with pytest.raises(ValueError):
        newton_fractional_root(0.0, 2.0)
    with pytest.raises(ValueError):
        newton_fractional_root(1.5, 2.0)
    with pytest.raises(ValueError):
        newton_fractional_root(0.9, 0.5)


@given(
    st.floats(min_value=0.5, max_value=0.9999),
    st.floats(min_value=1.0, max_value=500.0),
)
def test_property_newton_in_unit_interval(alpha, cwnd):
    value = newton_fractional_root(alpha, cwnd, 2)
    assert 0.0 < value <= 1.0
    # alpha**(1/cwnd) >= alpha for cwnd >= 1.
    assert value >= alpha - 1e-9


# ----------------------------------------------------------------------
# MaxRttEstimator
# ----------------------------------------------------------------------
def test_initial_mxrtt_before_samples():
    est = MaxRttEstimator(initial_mxrtt=3.0)
    assert est.ewrtt is None
    assert est.mxrtt == 3.0


def test_first_sample_sets_ewrtt():
    est = MaxRttEstimator(beta=3.0)
    est.observe(0.1, cwnd=1.0)
    assert est.ewrtt == pytest.approx(0.1)
    assert est.mxrtt == pytest.approx(0.3)


def test_max_tracking_keeps_spikes():
    est = MaxRttEstimator(alpha=0.995)
    est.observe(0.1, cwnd=2.0)
    est.observe(1.0, cwnd=2.0)  # spike
    est.observe(0.1, cwnd=2.0)  # small sample does not erase the spike
    assert est.ewrtt > 0.9


def test_decay_rate_is_alpha_per_rtt():
    """Iterating cwnd times decays ewrtt by exactly alpha (the design
    rationale for the 1/cwnd exponent)."""
    alpha = 0.9
    for cwnd in (1, 4, 10):
        est = MaxRttEstimator(alpha=alpha, exact_root=True)
        est.observe(1.0, cwnd=cwnd)
        for _ in range(cwnd):
            est.observe(0.0, cwnd=cwnd)
        assert est.ewrtt == pytest.approx(alpha, rel=1e-9)


def test_sample_floor_wins_over_decay():
    est = MaxRttEstimator(alpha=0.5)
    est.observe(0.2, cwnd=1.0)
    for _ in range(50):
        est.observe(0.2, cwnd=1.0)
    assert est.ewrtt == pytest.approx(0.2)


def test_force_mxrtt_round_trips():
    est = MaxRttEstimator(beta=3.0)
    est.force_mxrtt(1.5)
    assert est.mxrtt == pytest.approx(1.5)
    assert est.ewrtt == pytest.approx(0.5)


def test_force_mxrtt_validates():
    est = MaxRttEstimator()
    with pytest.raises(ValueError):
        est.force_mxrtt(0.0)


def test_observe_validates():
    est = MaxRttEstimator()
    with pytest.raises(ValueError):
        est.observe(-1.0, cwnd=1.0)


def test_constructor_validation():
    with pytest.raises(ValueError):
        MaxRttEstimator(alpha=1.0)
    with pytest.raises(ValueError):
        MaxRttEstimator(alpha=0.0)
    with pytest.raises(ValueError):
        MaxRttEstimator(beta=0.0)
    with pytest.raises(ValueError):
        MaxRttEstimator(initial_mxrtt=0.0)


def test_newton_vs_exact_modes_agree_for_paper_alpha():
    newton = MaxRttEstimator(alpha=0.995)
    exact = MaxRttEstimator(alpha=0.995, exact_root=True)
    for est in (newton, exact):
        est.observe(0.5, cwnd=10)
        for _ in range(100):
            est.observe(0.05, cwnd=10)
    assert newton.ewrtt == pytest.approx(exact.ewrtt, rel=1e-5)


@given(
    st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=60),
    st.floats(min_value=1.0, max_value=100.0),
)
def test_property_ewrtt_upper_bounds_every_recent_sample(samples, cwnd):
    """ewrtt never falls below the most recent sample (mxrtt must be an
    upper bound on the RTT for TCP-PR's timers to be safe)."""
    est = MaxRttEstimator(alpha=0.995)
    for sample in samples:
        est.observe(sample, cwnd=cwnd)
        assert est.ewrtt >= sample - 1e-12
        assert est.mxrtt >= est.beta * sample - 1e-9


@given(st.floats(min_value=0.5, max_value=0.999))
def test_property_decay_monotone_in_cwnd(alpha):
    """Larger windows decay more slowly per update."""
    est = MaxRttEstimator(alpha=alpha, exact_root=True)
    assert est.decay_factor(1.0) <= est.decay_factor(10.0) <= est.decay_factor(100.0)

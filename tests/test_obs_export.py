"""Tests for structured export (repro.obs.export): JSONL/CSV round-trips."""

import csv
import json

from repro.obs import MetricsRegistry, read_jsonl, write_csv, write_jsonl
from repro.obs.export import (
    SCHEMA,
    header_record,
    key_to_str,
    registry_records,
    summarize_records,
)


def _sample_registry():
    registry = MetricsRegistry()
    registry.counter("link.drops", link="a->b", kind="queue").inc(3)
    series = registry.timeseries("flow.cwnd", flow=1, variant="tcp-pr")
    series.append(0.5, 2.0)
    series.append(1.0, 3.0)
    hist = registry.histogram("flow.reorder_displacement.hist", flow=1)
    hist.observe(2)
    hist.observe(40)
    return registry


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def test_jsonl_round_trip_preserves_records(tmp_path):
    records = _sample_registry().to_records()
    path = write_jsonl(records, tmp_path / "m.jsonl", command="test")
    loaded = read_jsonl(path)
    header, body = loaded[0], loaded[1:]
    assert header["record"] == "header"
    assert header["schema"] == SCHEMA == "repro.obs/v1"
    assert header["command"] == "test"
    assert body == json.loads(json.dumps(records))  # value-identical


def test_read_jsonl_tolerates_corrupt_midfile_line(tmp_path):
    """A writer killed mid-append under concurrent writers can fuse a
    torn fragment into one corrupt mid-file line; skip mode reads past
    it (with a warning) where the default raises."""
    import json as _json

    import pytest

    path = tmp_path / "torn.jsonl"
    good_a = _json.dumps({"record": "flow", "i": 1})
    good_b = _json.dumps({"record": "flow", "i": 2})
    path.write_text(f'{good_a}\n{{"record": "fl{good_b}\n{good_a}\n')
    with pytest.raises(_json.JSONDecodeError):
        read_jsonl(path)
    with pytest.warns(RuntimeWarning, match="skipped 1 unparseable"):
        records = read_jsonl(path, on_invalid="skip")
    assert [r["i"] for r in records] == [1, 1]
    with pytest.raises(ValueError):
        read_jsonl(path, on_invalid="ignore")


def test_header_not_duplicated(tmp_path):
    records = [header_record(), {"record": "metric", "name": "x"}]
    path = write_jsonl(records, tmp_path / "m.jsonl")
    loaded = read_jsonl(path)
    assert [r["record"] for r in loaded] == ["header", "metric"]


def test_registry_records_tags_cell():
    records = registry_records(_sample_registry(), cell=("tcp-pr", 0.0))
    assert all(r["cell"] == '["tcp-pr", 0.0]' for r in records)


def test_key_to_str_is_stable():
    assert key_to_str("plain") == "plain"
    assert key_to_str(("a", 1.0)) == '["a", 1.0]'
    assert key_to_str(42) == "42"


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------
def test_csv_round_trips_nested_values(tmp_path):
    records = _sample_registry().to_records()
    path = write_csv(records, tmp_path / "m.csv")
    with path.open() as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == len(records)
    first = rows[0]
    assert first["name"] == "link.drops"
    assert json.loads(first["labels"]) == {"kind": "queue", "link": "a->b"}
    series_row = next(row for row in rows if row["name"] == "flow.cwnd")
    assert json.loads(series_row["times"]) == [0.5, 1.0]


def test_csv_union_of_columns(tmp_path):
    records = [{"record": "a", "x": 1}, {"record": "b", "y": 2}]
    path = write_csv(records, tmp_path / "m.csv")
    with path.open() as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["record", "x", "y"]
    assert rows[1] == ["a", "1", ""]
    assert rows[2] == ["b", "", "2"]


# ----------------------------------------------------------------------
# Summaries
# ----------------------------------------------------------------------
def test_summarize_records_digest():
    records = [header_record(), *_sample_registry().to_records()]
    records.append(
        {
            "record": "cell",
            "key": "k",
            "cached": False,
            "attempts": 1,
            "wall_time": 0.25,
        }
    )
    records.append({"record": "sweep", "total": 1, "cached": 0, "executed": 1,
                    "failed": 0, "timed_out": 0, "retried": 0})
    text = summarize_records(records)
    assert "schema: repro.obs/v1" in text
    assert "metric=3" in text
    assert "flow.cwnd{flow=1,variant=tcp-pr}" in text
    assert "k: ok, attempts=1" in text
    assert "sweep: total=1" in text

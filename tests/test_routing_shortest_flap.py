"""Unit tests for shortest-path routing and route flapping."""

import pytest

from repro.net.network import Network
from repro.net.packet import Packet
from repro.routing.flap import RouteFlapper
from repro.routing.shortest_path import (
    install_shortest_path_routes,
    shortest_path,
)


def _diamond():
    """s -> {a | b,c} -> d : a 2-hop fast path and a 3-hop slow path."""
    net = Network(seed=1)
    net.add_nodes("s", "a", "b", "c", "d")
    for u, v in (("s", "a"), ("a", "d"), ("s", "b"), ("b", "c"), ("c", "d")):
        net.add_duplex_link(u, v, bandwidth=1e7, delay=0.01)
    return net


def test_shortest_path_returns_fewest_delay_route():
    net = _diamond()
    assert shortest_path(net, "s", "d") == ["s", "a", "d"]


def test_install_routes_covers_all_destinations():
    net = _diamond()
    install_shortest_path_routes(net)
    for node in net.nodes.values():
        for dst in net.nodes:
            if dst != node.name:
                assert dst in node.routes, f"{node.name} missing route to {dst}"


def test_routes_forward_correctly():
    net = _diamond()
    install_shortest_path_routes(net)
    arrivals = []

    class Sink:
        def receive(self, packet):
            arrivals.append(packet)

    net.node("d").agents[1] = Sink()
    net.sim.schedule(
        0.0, lambda: net.node("s").send(Packet("data", "s", "d", flow_id=1))
    )
    net.run(until=1.0)
    assert len(arrivals) == 1
    assert arrivals[0].hops == 2  # took the short path


# ----------------------------------------------------------------------
# Route flapping
# ----------------------------------------------------------------------
def test_flapper_requires_two_paths():
    net = Network(seed=1)
    net.add_nodes("s", "d")
    net.add_duplex_link("s", "d", bandwidth=1e7, delay=0.01)
    with pytest.raises(ValueError):
        RouteFlapper(net, "s", "d", period=0.1)


def test_flapper_validates_parameters():
    net = _diamond()
    with pytest.raises(ValueError):
        RouteFlapper(net, "s", "d", period=0.0)
    with pytest.raises(ValueError):
        RouteFlapper(net, "s", "d", period=1.0, jitter=1.5)


def test_flapper_cycles_paths():
    net = _diamond()
    flapper = RouteFlapper(net, "s", "d", period=0.1).install()
    first = tuple(flapper.active_path)
    net.run(until=0.15)
    assert tuple(flapper.active_path) != first
    assert flapper.flaps == 1
    net.run(until=0.25)
    assert tuple(flapper.active_path) == first  # round-robin wraps
    assert flapper.flaps == 2


def test_flapper_routes_change_packet_paths():
    net = _diamond()
    install_shortest_path_routes(net)
    RouteFlapper(net, "s", "d", period=0.05).install()
    arrivals = []

    class Sink:
        def receive(self, packet):
            arrivals.append(packet)

    net.node("d").agents[1] = Sink()

    def send_periodically(i=0):
        if i < 20:
            net.node("s").send(Packet("data", "s", "d", flow_id=1, seq=i))
            net.sim.schedule_in(0.02, lambda: send_periodically(i + 1))

    net.sim.schedule(0.0, send_periodically)
    net.run(until=2.0)
    hop_counts = {p.hops for p in arrivals}
    assert hop_counts == {2, 3}, "both paths must have been used"


def test_flapper_random_mode_changes_path():
    net = _diamond()
    flapper = RouteFlapper(net, "s", "d", period=0.05, randomize=True)
    before = flapper._active
    net.run(until=1.0)
    assert flapper.flaps >= 15
    # Random mode never picks the same path twice in a row, so after any
    # flap the path differs from its predecessor; just sanity-check state.
    assert 0 <= flapper._active < 2


def test_flapper_ignores_other_destinations():
    net = _diamond()
    flapper = RouteFlapper(net, "s", "d", period=0.1)
    assert flapper.choose_route(Packet("data", "s", "c", flow_id=1)) is None

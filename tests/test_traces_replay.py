"""Round-trip validation: analyze → distill → replay on a pinned
Figure 6 cell.

The acceptance property from the trace-pipeline redesign: replaying a
profile distilled from an ε-multipath run recovers the source trace's
reordering metrics (reorder ratio, mean extent, density) within 10%,
and repeated replays under the same seed are bit-identical.
"""

import pytest

from repro.app.bulk import BulkTransfer
from repro.core.pr import PrConfig
from repro.experiments.fig6_multipath import DEFAULT_INITIAL_SSTHRESH
from repro.obs.trace import PacketTracer
from repro.tcp.base import TcpConfig
from repro.topologies.multipath_mesh import (
    MultipathMeshSpec,
    build_multipath_mesh,
    install_epsilon_routing,
)
from repro.traces import (
    ReorderProfile,
    TraceStream,
    analyze_stream,
    distill_profile,
    replay_flow_workload,
    replay_profile,
)

#: The pinned cell: heavy persistent reordering (ε = 0.01), long enough
#: for a few thousand segments, fixed seed.
PINNED_EPSILON = 0.01
PINNED_DURATION = 6.0
PINNED_SEED = 1
TOLERANCE = 0.10


def _traced_fig6_cell(epsilon=PINNED_EPSILON, duration=PINNED_DURATION,
                      seed=PINNED_SEED):
    net = build_multipath_mesh(MultipathMeshSpec(link_delay=0.01, seed=seed))
    install_epsilon_routing(net, epsilon)
    BulkTransfer(
        net,
        "tcp-pr",
        "src",
        "dst",
        flow_id=1,
        tcp_config=TcpConfig(initial_ssthresh=DEFAULT_INITIAL_SSTHRESH),
        pr_config=PrConfig(initial_ssthresh=DEFAULT_INITIAL_SSTHRESH),
    )
    tracer = PacketTracer()
    tracer.watch_node_sends(net.node("src"))
    tracer.watch_node(net.node("dst"))
    net.run(until=duration)
    return TraceStream.from_tracer(tracer)


@pytest.fixture(scope="module")
def round_trip():
    stream = _traced_fig6_cell()
    source = analyze_stream(stream).flow(1)
    profile = distill_profile(stream, flow_id=1, name="fig6 pinned cell")
    replayed = replay_profile(profile, seed=PINNED_SEED)
    return source, profile, replayed


# ----------------------------------------------------------------------
# The 10% acceptance tolerance
# ----------------------------------------------------------------------
def test_source_cell_actually_reorders(round_trip):
    source, _, _ = round_trip
    assert source.unique_arrivals > 1000, "pinned cell too small to trust"
    assert source.reorder_ratio > 0.3, "pinned cell shows no reordering"


def test_replay_recovers_reorder_ratio(round_trip):
    source, _, replayed = round_trip
    error = abs(replayed.reorder_ratio - source.reorder_ratio)
    assert error / source.reorder_ratio <= TOLERANCE


def test_replay_recovers_mean_extent(round_trip):
    source, _, replayed = round_trip
    source_extent = source.extent_summary()["mean"]
    error = abs(replayed.mean_extent() - source_extent)
    assert error / source_extent <= TOLERANCE


def test_replay_recovers_reorder_density(round_trip):
    source, _, replayed = round_trip
    a, b = source.reorder_density(), replayed.reorder_density
    width = max(len(a), len(b))
    a = a + [0.0] * (width - len(a))
    b = b + [0.0] * (width - len(b))
    total_variation = 0.5 * sum(abs(x - y) for x, y in zip(a, b))
    assert total_variation <= TOLERANCE


def test_replay_conserves_packets(round_trip):
    _, profile, replayed = round_trip
    assert replayed.injected == len(profile.send_times)
    assert replayed.delivered + replayed.dropped <= replayed.injected
    assert replayed.delivered > 0.9 * replayed.injected


def test_profile_captured_the_multipath_structure(round_trip):
    _, profile, _ = round_trip
    # ε-routing stamps the route each packet took; the mesh has several.
    assert len(profile.path_extras) > 1
    assert profile.base_delay > 0.0


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_replay_is_bit_identical_under_equal_seeds(round_trip):
    _, profile, replayed = round_trip
    again = replay_profile(profile, seed=PINNED_SEED)
    assert again.report.extents == replayed.report.extents
    assert again.report.late_offsets == replayed.report.late_offsets
    assert again.delivered == replayed.delivered
    assert again.dropped == replayed.dropped


def test_replay_seed_changes_the_sampled_process(round_trip):
    _, profile, replayed = round_trip
    other = replay_profile(profile, seed=PINNED_SEED + 1)
    assert other.report.extents != replayed.report.extents


# ----------------------------------------------------------------------
# Closed-loop workload replay
# ----------------------------------------------------------------------
def test_workload_replay_is_deterministic(round_trip):
    _, profile, _ = round_trip
    first = replay_flow_workload(profile, "sack", duration=3.0, seed=0)
    second = replay_flow_workload(profile, "sack", duration=3.0, seed=0)
    assert first == second
    assert first > 0.0


def test_workload_replay_reproduces_the_paper_gap(round_trip):
    """TCP-PR over the distilled reordering link beats a DUPACK-based
    sender — the paper's core claim, reproduced from a replayed trace."""
    _, profile, _ = round_trip
    pr = replay_flow_workload(profile, "tcp-pr", duration=3.0, seed=0)
    sack = replay_flow_workload(profile, "sack", duration=3.0, seed=0)
    assert pr > 2.0 * sack


# ----------------------------------------------------------------------
# Guard rails
# ----------------------------------------------------------------------
def test_replay_requires_a_send_schedule():
    bare = ReorderProfile(
        name="no-schedule", base_delay=0.01, extra_delays=(0.0, 0.001),
        loss_rate=0.0,
    )
    with pytest.raises(ValueError, match="no recorded send schedule"):
        replay_profile(bare)

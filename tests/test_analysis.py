"""Tests for the fairness / throughput / reordering metrics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.fairness import (
    coefficient_of_variation,
    jain_index,
    mean_normalized_throughput,
    normalized_throughputs,
)
from repro.analysis.reordering import reorder_density, reordering_ratio
from repro.analysis.throughput import FlowSample, goodput_bps, goodput_mbps


# ----------------------------------------------------------------------
# Normalized throughput (Section 4's T_i)
# ----------------------------------------------------------------------
def test_normalized_equal_flows_are_one():
    assert normalized_throughputs([5.0, 5.0, 5.0]) == [1.0, 1.0, 1.0]


def test_normalized_sums_to_n():
    values = normalized_throughputs([1.0, 2.0, 3.0])
    assert sum(values) == pytest.approx(3.0)


def test_normalized_rejects_empty_and_negative():
    with pytest.raises(ValueError):
        normalized_throughputs([])
    with pytest.raises(ValueError):
        normalized_throughputs([1.0, -2.0])


def test_normalized_all_zero():
    assert normalized_throughputs([0.0, 0.0]) == [0.0, 0.0]


def test_mean_normalized_uses_global_mean():
    result = mean_normalized_throughput({"a": [2.0, 2.0], "b": [1.0, 1.0]})
    # Global mean = 1.5: a -> 4/3, b -> 2/3.
    assert result["a"] == pytest.approx(4 / 3)
    assert result["b"] == pytest.approx(2 / 3)


def test_mean_normalized_fair_split_is_one_each():
    result = mean_normalized_throughput({"a": [3.0, 5.0], "b": [5.0, 3.0]})
    assert result["a"] == pytest.approx(1.0)
    assert result["b"] == pytest.approx(1.0)


def test_mean_normalized_validates():
    with pytest.raises(ValueError):
        mean_normalized_throughput({})
    with pytest.raises(ValueError):
        mean_normalized_throughput({"a": []})


@given(
    st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=2, max_size=10),
    st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=2, max_size=10),
)
def test_property_mean_normalized_weighted_average_is_one(a_values, b_values):
    result = mean_normalized_throughput({"a": a_values, "b": b_values})
    n_a, n_b = len(a_values), len(b_values)
    weighted = (result["a"] * n_a + result["b"] * n_b) / (n_a + n_b)
    assert weighted == pytest.approx(1.0, rel=1e-9)


# ----------------------------------------------------------------------
# CoV and Jain
# ----------------------------------------------------------------------
def test_cov_zero_for_equal_values():
    assert coefficient_of_variation([3.0, 3.0, 3.0]) == 0.0


def test_cov_known_value():
    # mean 2, population variance ((1)^2 + (1)^2)/2 = 1 -> CoV = 0.5.
    assert coefficient_of_variation([1.0, 3.0]) == pytest.approx(0.5)


def test_cov_validates_empty():
    with pytest.raises(ValueError):
        coefficient_of_variation([])


def test_jain_perfect_fairness():
    assert jain_index([4.0, 4.0, 4.0]) == pytest.approx(1.0)


def test_jain_total_unfairness():
    # One flow takes everything among n flows -> 1/n.
    assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=20))
def test_property_jain_bounds(values):
    index = jain_index(values)
    assert 1.0 / len(values) - 1e-9 <= index <= 1.0 + 1e-9


# ----------------------------------------------------------------------
# Goodput helpers
# ----------------------------------------------------------------------
def test_goodput_between_samples():
    start = FlowSample(10.0, 100)
    end = FlowSample(20.0, 600)
    # 500 segments * 8000 bits / 10 s = 400 kbps.
    assert goodput_bps(start, end, 1000) == pytest.approx(400_000)
    assert goodput_mbps(start, end, 1000) == pytest.approx(0.4)


def test_goodput_validates_order_and_monotonicity():
    with pytest.raises(ValueError):
        goodput_bps(FlowSample(5.0, 0), FlowSample(5.0, 10), 1000)
    with pytest.raises(ValueError):
        goodput_bps(FlowSample(0.0, 10), FlowSample(1.0, 5), 1000)


# ----------------------------------------------------------------------
# Reordering metrics
# ----------------------------------------------------------------------
def test_reordering_ratio_in_order():
    assert reordering_ratio([0, 1, 2, 3]) == 0.0


def test_reordering_ratio_counts_late_arrivals():
    # 1 and 2 arrive after 3: two late arrivals out of three transitions.
    assert reordering_ratio([0, 3, 1, 2]) == pytest.approx(2 / 3)


def test_reordering_ratio_edge_cases():
    assert reordering_ratio([]) == 0.0
    assert reordering_ratio([7]) == 0.0


def test_reorder_density_in_order():
    histogram = reorder_density([0, 1, 2])
    assert histogram[0] == 3
    assert sum(histogram) == 3


def test_reorder_density_displacement():
    # seq 0 received last among three: displaced by 2.
    histogram = reorder_density([1, 2, 0])
    assert histogram[2] == 1
    assert sum(histogram) == 3


@given(st.permutations(list(range(10))))
def test_property_density_counts_everything(order):
    histogram = reorder_density(list(order))
    assert sum(histogram) == 10

"""Tests for the fault-injection subsystem (repro.faults) and the
simulator watchdog it leans on."""

import json

import pytest

from repro.app.bulk import BulkTransfer
from repro.experiments.fig7_faults import (
    Fig7Spec,
    format_fig7,
    outage_schedule,
    run_fig7,
)
from repro.faults import (
    AckLoss,
    DelaySpike,
    FaultSchedule,
    FaultScheduleError,
    FaultTargetError,
    Injector,
    LinkDown,
    LinkUp,
    PathBlackout,
    inject,
)
from repro.net.network import Network, install_static_routes
from repro.routing.flap import RouteFlapper
from repro.routing.multipath import EpsilonMultipathPolicy
from repro.sim.engine import Simulator
from repro.sim.errors import (
    DeadlineExceededError,
    LivelockError,
    SimulationError,
)
from repro.topologies.multipath_mesh import (
    MultipathMeshSpec,
    build_multipath_mesh,
    install_epsilon_routing,
)
from repro.obs import FaultTimelineMonitor

pytestmark = pytest.mark.faults


# ----------------------------------------------------------------------
# Schedule construction and JSON round-trip
# ----------------------------------------------------------------------
def _sample_schedule():
    return FaultSchedule(
        [
            LinkUp(time=7.0, src="a", dst="b"),
            LinkDown(time=5.0, src="a", dst="b", flush=True),
            PathBlackout(time=5.0, duration=2.0, origin="a", dst="c",
                         path_index=1),
            DelaySpike(time=7.0, duration=1.0, src="a", dst="b", factor=3.0),
            AckLoss(time=5.0, duration=2.0, src="b", dst="a", rate=0.5),
        ]
    )


def test_schedule_sorts_by_time_keeping_registration_order():
    schedule = _sample_schedule()
    assert [event.time for event in schedule] == [5.0, 5.0, 5.0, 7.0, 7.0]
    # Equal-time events keep their construction order.
    assert [event.kind for event in schedule] == [
        "link-down", "path-blackout", "ack-loss", "link-up", "delay-spike",
    ]


def test_schedule_json_round_trip_is_lossless():
    schedule = _sample_schedule()
    blob = json.dumps(schedule.to_jsonable())  # must be real JSON
    revived = FaultSchedule.from_jsonable(json.loads(blob))
    assert revived == schedule
    assert hash(revived) == hash(schedule)


def test_schedule_horizon_covers_windowed_events():
    assert _sample_schedule().horizon == 8.0  # delay spike ends at 7 + 1
    assert FaultSchedule().horizon == 0.0


def test_unknown_kind_and_unknown_fields_rejected():
    with pytest.raises(FaultScheduleError):
        FaultSchedule.from_jsonable([{"kind": "meteor-strike", "time": 1.0}])
    with pytest.raises(FaultScheduleError):
        FaultSchedule.from_jsonable(
            [{"kind": "link-down", "time": 1.0, "src": "a", "dst": "b",
              "sev": 9}]
        )


@pytest.mark.parametrize(
    "build",
    [
        lambda: LinkDown(time=-1.0, src="a", dst="b"),
        lambda: LinkDown(time=1.0, src="", dst="b"),
        lambda: PathBlackout(time=1.0, duration=0.0, origin="a", dst="b"),
        lambda: PathBlackout(time=1.0, duration=1.0, origin="a", dst="b",
                             path_index=-1),
        lambda: DelaySpike(time=1.0, duration=1.0, src="a", dst="b",
                           factor=0.0),
        lambda: AckLoss(time=1.0, duration=1.0, src="a", dst="b", rate=0.0),
        lambda: AckLoss(time=1.0, duration=1.0, src="a", dst="b", rate=1.5),
    ],
)
def test_invalid_events_rejected(build):
    with pytest.raises(FaultScheduleError):
        build()


def test_link_outage_builder_duplex():
    schedule = FaultSchedule.link_outage("a", "b", start=2.0, duration=3.0,
                                         duplex=True)
    kinds = sorted((event.kind, event.src, event.dst) for event in schedule)
    assert kinds == [
        ("link-down", "a", "b"), ("link-down", "b", "a"),
        ("link-up", "a", "b"), ("link-up", "b", "a"),
    ]


def test_periodic_blackouts_builder():
    schedule = FaultSchedule.periodic_blackouts(
        "src", "dst", path_index=0, period=5.0, duration=1.0, until=20.0
    )
    assert [event.time for event in schedule] == [5.0, 10.0, 15.0]
    assert all(event.kind == "path-blackout" for event in schedule)


# ----------------------------------------------------------------------
# Link-level faults
# ----------------------------------------------------------------------
def _two_node_net(seed=0):
    net = Network(seed=seed)
    net.add_nodes("snd", "rcv")
    net.add_duplex_link("snd", "rcv", bandwidth=1e6, delay=0.01, queue=50)
    install_static_routes(net)
    return net


def test_link_down_drops_and_link_up_recovers():
    net = _two_node_net()
    schedule = FaultSchedule.link_outage("snd", "rcv", start=2.0, duration=3.0,
                                         flush=True)
    inject(net, schedule)
    flow = BulkTransfer(net, "tcp-pr", "snd", "rcv", flow_id=1)

    net.run(until=2.5)
    during = flow.delivered_bytes()
    link = net.link("snd", "rcv")
    assert not link.up
    net.run(until=4.9)
    assert flow.delivered_bytes() == during  # nothing crosses a down link
    assert link.fault_drops > 0

    net.run(until=12.0)
    assert link.up
    assert flow.delivered_bytes() > during  # delivery resumed after up


def test_link_down_without_flush_holds_queue():
    net = _two_node_net()
    link = net.link("snd", "rcv")
    inject(net, FaultSchedule(
        [LinkDown(time=1.0, src="snd", dst="rcv", flush=False)]
    ))
    flow = BulkTransfer(net, "tcp-pr", "snd", "rcv", flow_id=1)
    net.run(until=3.0)
    # Held, not flushed: whatever was queued at t=1 is still waiting.
    assert not link.up
    assert flow.delivered_bytes() >= 0


def test_delay_spike_inflates_one_way_delay():
    net = _two_node_net()
    inject(net, FaultSchedule(
        [DelaySpike(time=0.0, duration=5.0, src="snd", dst="rcv", factor=4.0)]
    ))
    from repro.net.packet import Packet

    arrivals = []

    class Probe:
        def receive(self, packet):
            arrivals.append(net.sim.now)

    net.node("rcv").register_agent(9, Probe())
    net.sim.schedule(1.0, lambda: net.node("snd").send(
        Packet(kind="data", src="snd", dst="rcv", flow_id=9, seq=0,
               size_bytes=125)
    ))
    net.run(until=3.0)
    assert len(arrivals) == 1
    # 1 ms serialization + 4 x 10 ms propagation.
    assert arrivals[0] == pytest.approx(1.0 + 0.001 + 0.04)


def test_ack_loss_window_starves_then_clears():
    net = _two_node_net()
    inject(net, FaultSchedule(
        [AckLoss(time=1.0, duration=2.0, src="rcv", dst="snd", rate=1.0)]
    ))
    flow = BulkTransfer(net, "tcp-pr", "snd", "rcv", flow_id=1)
    net.run(until=10.0)
    reverse = net.link("rcv", "snd")
    assert reverse.fault_drops > 0  # ACKs died in the window
    assert flow.delivered_bytes() > 0  # and the flow still recovered


# ----------------------------------------------------------------------
# Path blackouts on both policy types
# ----------------------------------------------------------------------
def test_path_blackout_reroutes_epsilon_policy():
    net = build_multipath_mesh(MultipathMeshSpec(link_delay=0.01, seed=1))
    policy = install_epsilon_routing(net, epsilon=0.0)
    monitor = FaultTimelineMonitor()
    inject(net, FaultSchedule(
        [PathBlackout(time=1.0, duration=2.0, origin="src", dst="dst",
                      path_index=0)]
    ), monitor=monitor)
    flow = BulkTransfer(net, "tcp-pr", "src", "dst", flow_id=1)

    net.run(until=2.0)
    assert policy.disabled_paths("dst") == [0]
    mid = flow.delivered_bytes()
    assert mid > 0  # survivors carried the traffic
    net.run(until=6.0)
    assert policy.disabled_paths("dst") == []
    assert flow.delivered_bytes() > mid
    assert [record.kind for record in monitor.records] == [
        "path-blackout", "path-blackout",
    ]
    assert len(monitor.between(0.0, 1.5)) == 1


def test_path_blackout_on_route_flapper():
    net = Network(seed=0)
    net.add_nodes("snd", "rcv", "a", "b")
    for mid in ("a", "b"):
        net.add_duplex_link("snd", mid, bandwidth=1e6, delay=0.01, queue=50)
        net.add_duplex_link(mid, "rcv", bandwidth=1e6, delay=0.01, queue=50)
    install_static_routes(net)
    flapper = RouteFlapper(net, "snd", dst="rcv", period=0.5).install()
    inject(net, FaultSchedule(
        [PathBlackout(time=1.0, duration=2.0, origin="snd", dst="rcv",
                      path_index=0)]
    ))
    flow = BulkTransfer(net, "tcp-pr", "snd", "rcv", flow_id=1)
    net.run(until=2.0)
    assert flapper.disabled_paths("rcv") == [0]
    assert flow.delivered_bytes() > 0
    net.run(until=6.0)
    assert flapper.disabled_paths("rcv") == []


def test_blackout_of_every_path_is_rejected():
    net = build_multipath_mesh(MultipathMeshSpec(num_paths=2, seed=0))
    policy = install_epsilon_routing(net, epsilon=0.0)
    policy.disable_path("dst", 0)
    with pytest.raises(SimulationError):
        policy.disable_path("dst", 1)


# ----------------------------------------------------------------------
# Injector validation
# ----------------------------------------------------------------------
def test_injector_rejects_unknown_link_eagerly():
    net = _two_node_net()
    schedule = FaultSchedule([LinkDown(time=1.0, src="snd", dst="nowhere")])
    with pytest.raises(FaultTargetError):
        inject(net, schedule)


def test_injector_rejects_blackout_without_policy():
    net = _two_node_net()
    schedule = FaultSchedule(
        [PathBlackout(time=1.0, duration=1.0, origin="snd", dst="rcv")]
    )
    with pytest.raises(FaultTargetError):
        inject(net, schedule)


def test_injector_arm_is_single_shot():
    net = _two_node_net()
    injector = inject(net, FaultSchedule())
    with pytest.raises(SimulationError):
        injector.arm()


# ----------------------------------------------------------------------
# Simulator watchdog
# ----------------------------------------------------------------------
def test_livelock_detector_fires_on_zero_delay_loop():
    sim = Simulator(seed=0)

    def respawn():
        sim.schedule(sim.now, respawn)

    sim.schedule(0.0, respawn)
    with pytest.raises(LivelockError) as excinfo:
        sim.run(until=1.0, livelock_threshold=500)
    assert excinfo.value.stalled_events >= 500


def test_livelock_counter_resets_when_time_advances():
    sim = Simulator(seed=0)
    ticks = []

    def tick():
        ticks.append(sim.now)
        if len(ticks) < 2000:
            sim.schedule_in(1e-6, tick)

    sim.schedule(0.0, tick)
    sim.run(until=1.0, livelock_threshold=500)  # must not raise
    assert len(ticks) == 2000


def test_deadline_bounds_wall_clock():
    sim = Simulator(seed=0)

    def spin():
        sim.schedule_in(1e-9, spin)

    sim.schedule(0.0, spin)
    with pytest.raises(DeadlineExceededError):
        sim.run(until=1e9, deadline=0.2)


def test_watchdog_args_validated():
    sim = Simulator(seed=0)
    with pytest.raises(ValueError):
        sim.run(until=1.0, deadline=0.0)
    with pytest.raises(ValueError):
        sim.run(until=1.0, livelock_threshold=0)


def test_peek_time_skips_cancelled_head():
    sim = Simulator(seed=0)
    first = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    first.cancel()
    assert sim.peek_time() == 2.0


# ----------------------------------------------------------------------
# Figure 7 end-to-end (tiny)
# ----------------------------------------------------------------------
def test_fig7_tiny_sweep_shape_and_determinism():
    spec = Fig7Spec(protocols=("tcp-pr",), outages=(0.0, 2.0),
                    duration=8.0, period=4.0, seed=2)
    serial = run_fig7(spec, jobs=1)
    parallel = run_fig7(spec, jobs=2)
    assert serial.goodput_mbps == parallel.goodput_mbps
    clean, faulted = (serial.goodput_mbps["tcp-pr"][o] for o in (0.0, 2.0))
    assert clean > 0 and faulted > 0
    assert faulted < clean  # the outage must cost something
    assert serial.failures == {}
    assert "Figure 7" in format_fig7(serial)


def test_outage_schedule_zero_is_empty():
    assert len(outage_schedule(0.0, period=5.0, duration=30.0)) == 0
    assert len(outage_schedule(1.0, period=10.0, duration=30.0)) == 5 * 2

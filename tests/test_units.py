"""Unit tests for unit helpers."""

import pytest

from repro.util.units import (
    GBPS,
    KBPS,
    MBPS,
    MS,
    bits_to_mbps,
    bytes_to_bits,
    fmt_bandwidth,
    fmt_time,
)


def test_constants():
    assert MBPS == 1_000 * KBPS
    assert GBPS == 1_000 * MBPS
    assert MS == 1e-3


def test_bytes_to_bits():
    assert bytes_to_bits(1000) == 8000


def test_bits_to_mbps():
    assert bits_to_mbps(10_000_000, 1.0) == pytest.approx(10.0)
    assert bits_to_mbps(5_000_000, 2.0) == pytest.approx(2.5)


def test_bits_to_mbps_rejects_bad_interval():
    with pytest.raises(ValueError):
        bits_to_mbps(1.0, 0.0)


def test_fmt_bandwidth():
    assert fmt_bandwidth(10 * MBPS) == "10.00 Mbps"
    assert fmt_bandwidth(2 * GBPS) == "2.00 Gbps"
    assert fmt_bandwidth(64 * KBPS) == "64.00 kbps"
    assert fmt_bandwidth(100) == "100 bps"


def test_fmt_time():
    assert fmt_time(1.5) == "1.500 s"
    assert fmt_time(0.010) == "10.0 ms"
    assert fmt_time(25e-6) == "25.0 us"

"""Tests for the declarative sweep-spec layer (repro.exec.spec)."""

import json
import random
from dataclasses import FrozenInstanceError, dataclass
from typing import ClassVar

import pytest

from repro.exec.spec import ExperimentSpec, Scale, SweepCell, resolve_func
from repro.experiments.fig2_fairness import Fig2Spec
from repro.experiments.fig3_cov import Fig3Spec
from repro.experiments.fig4_params import BetaSweepSpec, Fig4Spec
from repro.experiments.fig6_multipath import Fig6Spec
from repro.experiments import fig2_fairness, fig3_cov, fig4_params, fig6_multipath
from repro.experiments.serialize import result_to_jsonable
from repro.sim.rng import RngRegistry, derive_child_seed


# ----------------------------------------------------------------------
# Scale
# ----------------------------------------------------------------------
def test_scale_from_flag():
    assert Scale.from_flag(True) is Scale.PAPER
    assert Scale.from_flag(False) is Scale.QUICK


def test_scale_from_string():
    assert Scale("paper") is Scale.PAPER
    assert Fig4Spec.presets("quick") == Fig4Spec.presets(Scale.QUICK)


# ----------------------------------------------------------------------
# derive_child_seed
# ----------------------------------------------------------------------
def test_derive_child_seed_is_stable_and_distinct():
    assert derive_child_seed(7, "x") == derive_child_seed(7, "x")
    assert derive_child_seed(7, "x") != derive_child_seed(7, "y")
    assert derive_child_seed(7, "x") != derive_child_seed(8, "x")
    assert 0 <= derive_child_seed(123, "anything") < 2**63


def test_rng_registry_uses_derive_child_seed():
    """The registry's streams and the public derivation must agree, so a
    sweep cell can reproduce any in-simulation stream."""
    registry = RngRegistry(master_seed=42)
    direct = random.Random(derive_child_seed(42, "lossy-link"))  # lint: allow-module-random(fixed-seed fixture stream; the literal seed keeps the test deterministic)
    assert registry.stream("lossy-link").random() == direct.random()


# ----------------------------------------------------------------------
# SweepCell / resolve_func
# ----------------------------------------------------------------------
def test_resolve_func_roundtrip():
    func = resolve_func(fig6_multipath.CELL_FUNC)
    assert func is fig6_multipath.run_fig6_cell


@pytest.mark.parametrize(
    "bad", ["nocolon", ":leading", "trailing:", "repro.exec.spec:not_there"]
)
def test_resolve_func_rejects_bad_paths(bad):
    with pytest.raises((ValueError, ModuleNotFoundError)):
        resolve_func(bad)


def test_resolve_func_rejects_non_callable():
    with pytest.raises(ValueError):
        resolve_func("repro.experiments.fig2_fairness:CELL_FUNC")


def test_sweep_cell_runs_in_process():
    cell = SweepCell(
        key=("tcp-pr", 500.0),
        func=fig6_multipath.CELL_FUNC,
        params={
            "protocol": "tcp-pr",
            "epsilon": 500.0,
            "link_delay": 0.01,
            "duration": 2.0,
        },
        seed=0,
    )
    mbps = cell.run()
    assert mbps == fig6_multipath.run_single_multipath_flow(
        "tcp-pr", 500.0, duration=2.0
    )


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------
def test_fig2_presets_match_module_constants():
    quick = Fig2Spec.presets(Scale.QUICK)
    paper = Fig2Spec.presets(Scale.PAPER)
    assert quick.flow_counts == tuple(fig2_fairness.QUICK_FLOW_COUNTS)
    assert paper.flow_counts == tuple(fig2_fairness.PAPER_FLOW_COUNTS)
    assert paper.duration == fig2_fairness.PAPER_DURATION
    assert paper.measure_window == fig2_fairness.PAPER_MEASURE_WINDOW


def test_fig3_presets_match_module_constants():
    paper = Fig3Spec.presets(Scale.PAPER)
    assert paper.bandwidths_mbps == tuple(fig3_cov.PAPER_BANDWIDTHS_MBPS)
    assert paper.total_flows == fig3_cov.PAPER_FLOWS


def test_fig4_presets_match_module_constants():
    paper = Fig4Spec.presets(Scale.PAPER)
    assert paper.alphas == tuple(fig4_params.PAPER_ALPHAS)
    assert paper.betas == tuple(fig4_params.PAPER_BETAS)
    assert paper.total_flows == fig4_params.PAPER_FLOWS


def test_fig6_presets_match_module_constants():
    quick = Fig6Spec.presets(Scale.QUICK)
    paper = Fig6Spec.presets(Scale.PAPER)
    assert quick.epsilons == tuple(fig6_multipath.QUICK_EPSILONS)
    assert paper.epsilons == tuple(fig6_multipath.PAPER_EPSILONS)
    assert paper.duration == fig6_multipath.PAPER_DURATION


def test_presets_overrides_apply_and_none_is_ignored():
    spec = Fig4Spec.presets(
        Scale.PAPER, alphas=(0.5,), betas=None, seed=9, duration=None
    )
    assert spec.alphas == (0.5,)
    assert spec.betas == tuple(fig4_params.PAPER_BETAS)  # None ignored
    assert spec.duration == fig4_params.PAPER_DURATION
    assert spec.seed == 9


def test_specs_are_frozen():
    spec = Fig6Spec()
    with pytest.raises(FrozenInstanceError):
        spec.duration = 1.0


def test_with_seed():
    spec = Fig6Spec(seed=0)
    assert spec.with_seed(None) is spec
    assert spec.with_seed(5).seed == 5


# ----------------------------------------------------------------------
# Cells
# ----------------------------------------------------------------------
def test_fig2_cells_derive_per_count_seeds():
    spec = Fig2Spec(flow_counts=(4, 8), seed=100)
    cells = spec.cells()
    assert [cell.key for cell in cells] == [4, 8]
    assert [cell.seed for cell in cells] == [104, 108]
    assert all(cell.func == fig2_fairness.CELL_FUNC for cell in cells)


def test_fig4_cells_cover_the_grid():
    spec = Fig4Spec(alphas=(0.5, 0.995), betas=(1.0, 3.0))
    keys = {cell.key for cell in spec.cells()}
    assert keys == {(0.5, 1.0), (0.5, 3.0), (0.995, 1.0), (0.995, 3.0)}


def test_fig6_cells_cover_protocol_epsilon_product():
    spec = Fig6Spec(protocols=("tcp-pr", "sack"), epsilons=(0.0, 500.0))
    keys = {cell.key for cell in spec.cells()}
    assert len(keys) == 4
    assert ("sack", 0.0) in keys


def test_beta_sweep_cells():
    spec = BetaSweepSpec(betas=(3.0, 10.0), seed=2)
    cells = spec.cells()
    assert [cell.key for cell in cells] == [3.0, 10.0]
    assert all(cell.seed == 2 for cell in cells)


@pytest.mark.parametrize(
    "spec",
    [
        Fig2Spec(flow_counts=(4,)),
        Fig3Spec(bandwidths_mbps=(6.0,)),
        Fig4Spec(alphas=(0.5,), betas=(3.0,)),
        Fig6Spec(protocols=("tcp-pr",), epsilons=(0.0,)),
        BetaSweepSpec(betas=(3.0,)),
    ],
)
def test_cell_params_are_hashable_content(spec):
    """Every cell's params must canonicalize to JSON — the cache keys on it."""
    for cell in spec.cells():
        json.dumps(result_to_jsonable(dict(cell.params)), sort_keys=True)


def test_sequence_fields_are_normalized_to_tuples():
    assert Fig2Spec(flow_counts=[2, 4]).flow_counts == (2, 4)
    assert Fig4Spec(alphas=[0.5], betas=[1.0]).alphas == (0.5,)


# ----------------------------------------------------------------------
# ExperimentSpec base behaviour
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ToySpec(ExperimentSpec):
    name: ClassVar[str] = "toy"
    seed: int = 0


def test_default_cell_seed_uses_child_derivation():
    spec = _ToySpec(seed=11)
    assert spec.cell_seed("a") == derive_child_seed(11, "toy/a")
    assert spec.cell_seed("a") != spec.cell_seed("b")


def test_base_spec_methods_are_abstract():
    spec = _ToySpec()
    with pytest.raises(NotImplementedError):
        spec.cells()
    with pytest.raises(NotImplementedError):
        spec.assemble({})

"""Tests for TCP-PR's coarse-timer (granularity) option."""

import pytest

from repro.core.pr import PrConfig
from repro.net.lossgen import DeterministicLoss

from conftest import make_flow


def test_zero_granularity_is_default():
    assert PrConfig().timer_granularity == 0.0


def test_quantize_rounds_up_to_tick():
    flow = make_flow("tcp-pr", pr_config=PrConfig(timer_granularity=0.5))
    sender = flow.sender
    assert sender._quantize(0.3) == pytest.approx(0.5)
    assert sender._quantize(0.5) == pytest.approx(0.5)
    assert sender._quantize(0.51) == pytest.approx(1.0)
    assert sender._quantize(1.75) == pytest.approx(2.0)


def test_coarse_timer_delays_detection():
    """With 0.5 s ticks, a drop is detected on a tick boundary, so the
    detection latency stretches to the next multiple of the tick."""
    detections = []

    def build(granularity):
        flow = make_flow(
            "tcp-pr",
            data_loss=DeterministicLoss([40]),
            pr_config=PrConfig(initial_ssthresh=16, timer_granularity=granularity),
        )
        sender = flow.sender
        original = sender._declare_drop

        def spy(seq):
            detections.append((granularity, flow.network.sim.now))
            original(seq)

        sender._declare_drop = spy
        flow.run(until=10.0)
        return flow

    build(0.0)
    build(0.5)
    fine = [t for g, t in detections if g == 0.0]
    coarse = [t for g, t in detections if g == 0.5]
    assert len(fine) == 1 and len(coarse) == 1
    assert coarse[0] >= fine[0]
    assert coarse[0] == pytest.approx(round(coarse[0] / 0.5) * 0.5, abs=1e-9)


def test_flow_still_works_with_coarse_timers():
    flow = make_flow(
        "tcp-pr",
        data_loss=DeterministicLoss([40, 80, 120]),
        pr_config=PrConfig(initial_ssthresh=16, timer_granularity=0.5),
    )
    flow.run(until=15.0)
    assert flow.sender.stats.drops_detected == 3
    assert flow.delivered > 1000

"""Property-based tests of the link substrate's core invariants."""

from hypothesis import given, settings, strategies as st

from repro.net.network import Network
from repro.net.packet import Packet


@given(
    sizes=st.lists(st.integers(min_value=40, max_value=1500), min_size=1,
                   max_size=40),
    gaps_ms=st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=1,
                     max_size=40),
)
@settings(max_examples=40, deadline=None)
def test_fifo_link_never_reorders(sizes, gaps_ms):
    """A fixed-delay link is FIFO regardless of packet sizes and send
    times: delivery order equals send order."""
    net = Network(seed=0)
    net.add_nodes("a", "b")
    link = net.add_link("a", "b", bandwidth=1e6, delay=0.01, queue=10_000)
    arrivals = []

    class Sink:
        def receive(self, packet):
            arrivals.append(packet.seq)

    net.node("b").agents[1] = Sink()

    time = 0.0
    count = min(len(sizes), len(gaps_ms))
    for i in range(count):
        time += gaps_ms[i] * 1e-3
        packet = Packet("data", "a", "b", flow_id=1, seq=i,
                        size_bytes=sizes[i])
        net.sim.schedule(time, (lambda p: lambda: link.enqueue(p))(packet))
    net.run(until=time + 10.0)
    assert arrivals == list(range(count))


@given(
    count=st.integers(min_value=1, max_value=60),
    capacity=st.integers(min_value=1, max_value=30),
)
@settings(max_examples=40, deadline=None)
def test_conservation_delivered_plus_dropped(count, capacity):
    """Every packet offered to a link is either delivered or dropped."""
    net = Network(seed=0)
    net.add_nodes("a", "b")
    link = net.add_link("a", "b", bandwidth=1e6, delay=0.01, queue=capacity)
    delivered = []

    class Sink:
        def receive(self, packet):
            delivered.append(packet.uid)

    net.node("b").agents[1] = Sink()

    def burst():
        for i in range(count):
            link.enqueue(Packet("data", "a", "b", flow_id=1, seq=i))

    net.sim.schedule(0.0, burst)
    net.run(until=60.0)
    assert len(delivered) + link.total_drops == count
    assert len(delivered) == len(set(delivered))  # no duplication
    # A burst can occupy the transmitter plus the queue.
    assert len(delivered) == min(count, capacity + 1)


@given(bandwidth=st.floats(min_value=1e4, max_value=1e9),
       size=st.integers(min_value=40, max_value=9000))
@settings(max_examples=50, deadline=None)
def test_serialization_time_formula(bandwidth, size):
    net = Network(seed=0)
    net.add_nodes("a", "b")
    link = net.add_link("a", "b", bandwidth=bandwidth, delay=0.0)
    packet = Packet("data", "a", "b", flow_id=1, size_bytes=size)
    assert link.transmission_time(packet) == size * 8.0 / bandwidth

"""Runtime invariant sanitizer: ``Simulator(sanitize=True)``.

Two halves:

* Clean runs stay clean — a seeded fairness cell runs to completion
  under the sanitizer, and a single-flow run produces bit-identical
  sender state with the sanitizer on and off (the checks observe, never
  perturb).
* Each invariant actually fires — a deliberately corrupted sender or
  engine trips the named :class:`InvariantViolation` when the
  simulation continues.

Corruptions are applied mid-run (after 1 s of traffic, so the window is
populated and ACKs keep arriving to drive the checks), then the run is
resumed with ``sim.sanitize = True``.
"""

import dataclasses
import heapq

import pytest

from repro.experiments.runner import build_fairness_scenario, run_fairness_scenario
from repro.net.network import Network, install_static_routes
from repro.sim.errors import InvariantViolation
from repro.tcp.receiver import TcpReceiver
from repro.tcp.registry import make_sender


@pytest.fixture(autouse=True)
def _both_engines(engine):
    """Run the whole module once per hot-core build: the sanitizer's
    checks (and the corruptions that trip them) must behave identically
    on the pure and compiled engines."""


def _single_flow(seed=0, sanitize=False):
    """One TCP-PR flow over a clean 2 Mbps / 10 ms link."""
    net = Network(seed=seed)
    net.add_nodes("snd", "rcv")
    net.add_duplex_link("snd", "rcv", bandwidth=2e6, delay=0.01, queue=50)
    install_static_routes(net)
    sender = make_sender("tcp-pr", net.sim, net.node("snd"), 1, "rcv")
    TcpReceiver(net.sim, net.node("rcv"), 1, "snd")
    net.sim.sanitize = sanitize
    sender.start(0.0)
    return net, sender


# ----------------------------------------------------------------------
# Clean runs
# ----------------------------------------------------------------------
def test_fairness_cell_runs_clean_under_sanitizer():
    scenario = build_fairness_scenario(topology="dumbbell", total_flows=4, seed=3)
    scenario.network.sim.sanitize = True
    result = run_fairness_scenario(scenario, duration=15.0, measure_window=10.0)
    assert result.mean_normalized  # completed and produced metrics


def test_sanitizer_does_not_perturb_results():
    runs = []
    for sanitize in (False, True):
        net, sender = _single_flow(seed=7, sanitize=sanitize)
        net.run(until=10.0)
        runs.append(
            (
                dataclasses.asdict(sender.stats),
                sender.cwnd,
                sender.cum_ack,
                sender.snd_nxt,
                sorted(sender.to_be_ack),
            )
        )
    assert runs[0] == runs[1]


# ----------------------------------------------------------------------
# Corruption detection — TCP-PR structural invariants (Tables 1-2)
# ----------------------------------------------------------------------
def _corrupt_and_resume(corrupt):
    net, sender = _single_flow(seed=1)
    net.run(until=1.0)
    assert sender.to_be_ack, "window should be populated after 1 s"
    corrupt(net, sender)
    net.sim.sanitize = True
    with pytest.raises(InvariantViolation) as excinfo:
        net.run(until=3.0)
    return excinfo.value


def test_detects_list_overlap():
    def corrupt(net, sender):
        # Highest in-flight seq: survives lower-seq ACKs uncancelled.
        sender._retx_pending.add(max(sender.to_be_ack))

    assert _corrupt_and_resume(corrupt).invariant == "pr-list-disjoint"


def test_detects_memorize_stray():
    def corrupt(net, sender):
        sender.memorize.add(999999)

    assert _corrupt_and_resume(corrupt).invariant == "pr-memorize-subset"


def test_detects_missed_cburst_reset():
    def corrupt(net, sender):
        sender.memorize.clear()
        sender.cburst = 5

    assert _corrupt_and_resume(corrupt).invariant == "pr-cburst-reset"


def test_detects_missed_extreme_loss_trigger():
    def corrupt(net, sender):
        sender.memorize = {max(sender.to_be_ack)}
        sender.cburst = 10000
        sender._extreme_active = False

    assert _corrupt_and_resume(corrupt).invariant == "pr-cburst-bound"


def test_detects_cwnd_below_floor():
    def corrupt(net, sender):
        # Far enough below 1 that per-ACK growth can't heal it before
        # the check runs.
        sender.cwnd = -50.0

    assert _corrupt_and_resume(corrupt).invariant == "pr-cwnd-floor"


def test_detects_non_max_tracking_estimator():
    def corrupt(net, sender):
        # An estimator that returns less than its own sample violates
        # the paper's max-tracking ewrtt definition.
        sender.estimator.observe = lambda sample, cwnd: sample * 0.5

    assert _corrupt_and_resume(corrupt).invariant == "ewrtt-max-tracking"


# ----------------------------------------------------------------------
# Corruption detection — engine invariants
# ----------------------------------------------------------------------
def test_detects_clock_regression():
    def corrupt(net, sender):
        net.sim.now = 1e9  # every pending event is now in the past

    assert _corrupt_and_resume(corrupt).invariant == "heap-time-monotonic"


def test_detects_live_counter_drift():
    def corrupt(net, sender):
        # A raw heap entry smuggled in without bumping _live is caught
        # by the run()-entry audit.  Smuggled by *assignment* rather
        # than in-place heappush: the compiled engine materializes
        # ``_heap`` on read, so only the setter reaches its real heap
        # (the assignment form corrupts both engine builds equally).
        heap = net.sim._heap
        heapq.heappush(heap, (1.5, 10**9, (lambda: None), None, "bogus"))
        net.sim._heap = heap

    assert _corrupt_and_resume(corrupt).invariant == "live-counter"


def test_sanitize_off_misses_the_same_corruption():
    """The flag gates the checks: the same corrupted state runs
    (wrongly) to completion without it."""
    net, sender = _single_flow(seed=1)
    net.run(until=1.0)
    sender.memorize.add(999999)
    net.run(until=3.0)  # no InvariantViolation
    assert 999999 in sender.memorize

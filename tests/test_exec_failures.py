"""Tests for the runner's failure policy: crash isolation, timeouts,
retries, and keep-going partial assembly (repro.exec.runner)."""

from dataclasses import dataclass

import pytest

from repro.exec.cache import ResultCache
from repro.exec.runner import CellError, ParallelRunner, SweepError
from repro.exec.spec import ExperimentSpec, PartialSweepResult, SweepCell
from repro.exec.testing import BOOM_CELL, FLAKY_CELL, OK_CELL, SLEEPY_CELL
from repro.sim.rng import derive_child_seed

pytestmark = pytest.mark.faults


def _ok(key, value=1, seed=0):
    return SweepCell(key=key, func=OK_CELL, params={"value": value}, seed=seed)


def _boom(key, message="boom"):
    return SweepCell(key=key, func=BOOM_CELL, params={"message": message})


def _sleepy(key, sleep):
    return SweepCell(key=key, func=SLEEPY_CELL, params={"sleep": sleep})


def _mixed_cells():
    return [_ok("a"), _boom("b"), _ok("c", value=3)]


# ----------------------------------------------------------------------
# Fail-fast (default): SweepError after draining, completed work kept
# ----------------------------------------------------------------------
def test_fail_fast_raises_sweep_error_with_completed_cells():
    with pytest.raises(SweepError) as excinfo:
        ParallelRunner().run_cells(_mixed_cells())
    error = excinfo.value
    assert [cell_error.key for cell_error in error.errors] == ["b"]
    assert error.errors[0].error == "ValueError"
    assert "boom" in error.errors[0].message
    # Every non-failing cell still drained to completion.
    assert set(error.completed) == {"a", "c"}


def test_fail_fast_still_caches_completed_cells(tmp_path):
    cache = ResultCache(tmp_path)
    with pytest.raises(SweepError):
        ParallelRunner(cache=cache).run_cells(_mixed_cells())
    assert cache.stats.stores == 2  # the two good cells survived the crash

    # A fixed re-run (failing cell replaced) reuses the cached work.
    fixed = [_ok("a"), _ok("b", value=2), _ok("c", value=3)]
    runner = ParallelRunner(cache=cache)
    values = runner.run_cells(fixed)
    assert runner.last_stats.cached == 2
    assert runner.last_stats.executed == 1
    assert values["a"] == {"value": 1, "seed": 0}
    assert values["b"] == {"value": 2, "seed": 0}


# ----------------------------------------------------------------------
# keep_going: partial results with CellError values
# ----------------------------------------------------------------------
def test_keep_going_returns_cell_errors_inline():
    runner = ParallelRunner(keep_going=True)
    values = runner.run_cells(_mixed_cells())
    assert list(values) == ["a", "b", "c"]  # cell order preserved
    assert values["a"] == {"value": 1, "seed": 0}
    assert isinstance(values["b"], CellError)
    assert values["c"] == {"value": 3, "seed": 0}
    assert runner.last_stats.failed == 1
    assert runner.last_stats.errors[0].key == "b"


def test_keep_going_serial_and_parallel_agree():
    cells = [_ok("a"), _boom("b"), _ok("c", value=3), _boom("d", "other")]
    serial = ParallelRunner(jobs=1, keep_going=True).run_cells(cells)
    parallel = ParallelRunner(jobs=4, keep_going=True).run_cells(cells)
    # Bit-identical including the error records (same tracebacks aside,
    # CellError compares by value).
    assert serial == parallel


# ----------------------------------------------------------------------
# Per-cell timeout
# ----------------------------------------------------------------------
def test_timeout_kills_overrunning_cell_only():
    cells = [_sleepy("slow", sleep=10.0), _sleepy("fast", sleep=0.01)]
    runner = ParallelRunner(jobs=2, timeout=1.0, keep_going=True)
    values = runner.run_cells(cells)
    assert isinstance(values["slow"], CellError)
    assert values["slow"].timed_out
    assert values["fast"] == {"value": 1, "seed": 0}
    assert runner.last_stats.timed_out == 1


def test_timeout_applies_even_with_one_job():
    runner = ParallelRunner(jobs=1, timeout=1.0, keep_going=True)
    values = runner.run_cells([_sleepy("slow", sleep=10.0)])
    assert isinstance(values["slow"], CellError)
    assert values["slow"].timed_out


# ----------------------------------------------------------------------
# Retries with re-derived attempt seeds
# ----------------------------------------------------------------------
def test_retry_rederives_seed_and_succeeds():
    seed = 42
    cell = SweepCell(
        key="flaky", func=FLAKY_CELL, params={"fail_seed": seed}, seed=seed
    )
    runner = ParallelRunner(retries=1, backoff=0.0)
    values = runner.run_cells([cell])
    assert values["flaky"]["seed"] == derive_child_seed(seed, "attempt/1")
    assert runner.last_stats.retried == 1
    assert runner.last_stats.failed == 0


def test_retries_exhausted_reports_attempt_count():
    runner = ParallelRunner(retries=2, backoff=0.0, keep_going=True)
    values = runner.run_cells([_boom("b")])
    assert isinstance(values["b"], CellError)
    assert values["b"].attempts == 3


# ----------------------------------------------------------------------
# Eager function validation
# ----------------------------------------------------------------------
def test_bad_func_path_fails_before_execution():
    cells = [
        _ok("good"),
        SweepCell(key="bad", func="repro.exec.testing:no_such_cell"),
    ]
    with pytest.raises(ValueError, match="no attribute"):
        ParallelRunner(jobs=2).run_cells(cells)


def test_malformed_func_path_rejected():
    with pytest.raises(ValueError, match="pkg.module:func"):
        ParallelRunner().run_cells([SweepCell(key="x", func="not-a-path")])


# ----------------------------------------------------------------------
# assemble_partial via run(spec)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ToySpec(ExperimentSpec):
    name = "toy"
    keys: tuple = ("a", "b", "c")

    def cells(self):
        return [
            _boom(key) if key == "b" else _ok(key, value=ord(key))
            for key in self.keys
        ]

    def assemble(self, results):
        return dict(results)


def test_run_spec_clean_path_uses_assemble():
    result = ParallelRunner(keep_going=True).run(_ToySpec(keys=("a", "c")))
    assert result == {
        "a": {"value": 97, "seed": 0},
        "c": {"value": 99, "seed": 0},
    }


def test_run_spec_partial_path_uses_assemble_partial():
    result = ParallelRunner(keep_going=True).run(_ToySpec())
    assert isinstance(result, PartialSweepResult)
    assert result.spec_name == "toy"
    assert not result.complete
    assert set(result.values) == {"a", "c"}
    assert set(result.errors) == {"b"}
    assert isinstance(result.errors["b"], CellError)


# ----------------------------------------------------------------------
# CellError ergonomics
# ----------------------------------------------------------------------
def test_cell_error_summary_mentions_key_error_and_attempts():
    runner = ParallelRunner(retries=1, backoff=0.0, keep_going=True)
    values = runner.run_cells([_boom("b")])
    summary = values["b"].summary()
    assert "b" in summary
    assert "ValueError" in summary
    assert "2 attempts" in summary

"""Behavioural tests for time-delayed fast recovery (TD-FR)."""

from repro.net.lossgen import DeterministicLoss
from repro.tcp.base import TcpConfig

from conftest import make_flow

from test_tcp_pr import make_reordering_flow  # reuse the 2-path builder
from repro.net.network import Network, install_static_routes
from repro.routing.multipath import EpsilonMultipathPolicy
from repro.tcp.receiver import TcpReceiver
from repro.tcp.registry import make_sender


def make_reordering_tcp_flow(variant, seed=0, tcp_config=None):
    """Any Reno-family variant over the 2-path ε=0 reordering network."""
    net = Network(seed=seed)
    net.add_nodes("snd", "rcv")
    for k in range(2):
        mids = [f"p{k}m{i}" for i in range(k + 1)]
        for m in mids:
            net.add_node(m)
        chain = ["snd", *mids, "rcv"]
        for u, v in zip(chain, chain[1:]):
            net.add_duplex_link(u, v, bandwidth=1e7, delay=0.01, queue=10_000)
    install_static_routes(net)
    EpsilonMultipathPolicy(net, "snd", epsilon=0.0, destinations=["rcv"]).install()
    EpsilonMultipathPolicy(net, "rcv", epsilon=0.0, destinations=["snd"]).install()
    sender = make_sender(variant, net.sim, net.node("snd"), 1, "rcv", tcp_config=tcp_config)
    receiver = TcpReceiver(net.sim, net.node("rcv"), 1, "snd")
    sender.start(0.0)
    return net, sender, receiver


def test_real_loss_still_fast_retransmits():
    flow = make_flow("tdfr", data_loss=DeterministicLoss([40]))
    flow.run(until=10.0)
    stats = flow.sender.stats
    assert stats.fast_retransmits == 1
    assert stats.timeouts == 0
    assert flow.delivered > 800


def test_trigger_is_delayed_not_immediate():
    flow = make_flow("tdfr", data_loss=DeterministicLoss([40]))
    flow.run(until=10.0)
    # All triggers went through the timer path (not fired instantly at
    # the third dupack).
    assert flow.sender.stats.extra["tdfr_delayed_triggers"] >= 1


def test_mild_reordering_cancels_trigger():
    """Under reordering without loss, holes fill before the deadline most
    of the time, so TD-FR avoids most of the spurious fast retransmits a
    plain NewReno would fire."""
    net, tdfr_sender, tdfr_receiver = make_reordering_tcp_flow("tdfr")
    net.run(until=10.0)
    net2, newreno_sender, newreno_receiver = make_reordering_tcp_flow("newreno")
    net2.run(until=10.0)
    assert tdfr_sender.stats.fast_retransmits < newreno_sender.stats.fast_retransmits
    assert tdfr_receiver.delivered > newreno_receiver.delivered


def test_cancelled_trigger_counted():
    net, sender, receiver = make_reordering_tcp_flow("tdfr")
    net.run(until=10.0)
    # Reordering constantly arms the timer; cancellations must occur
    # either via disarm (not counted) or stale fire (counted) — at
    # minimum the flow should not be constantly in recovery.
    assert receiver.delivered > 2000
    assert sender.stats.fast_retransmits < 50


def test_no_reordering_matches_newreno_roughly():
    config = TcpConfig(initial_ssthresh=16)
    tdfr = make_flow("tdfr", tcp_config=config)
    tdfr.run(until=5.0)
    newreno = make_flow("newreno", tcp_config=TcpConfig(initial_ssthresh=16))
    newreno.run(until=5.0)
    assert abs(tdfr.delivered - newreno.delivered) <= 5


def test_timeout_path_resets_tdfr_state():
    flow = make_flow("tdfr", data_loss=DeterministicLoss(range(5, 13)))
    flow.run(until=30.0)
    assert flow.sender.stats.timeouts >= 1
    assert flow.delivered > 100  # recovered after the blackout
    assert flow.sender._fr_timer is None or flow.sender._fr_timer.cancelled

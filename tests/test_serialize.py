"""Tests for experiment-result JSON serialization."""

import json

from repro.experiments.fig6_multipath import Fig6Spec, run_fig6
from repro.experiments.runner import run_fairness
from repro.experiments.serialize import dump_result, result_to_jsonable


def test_tuple_keys_flattened():
    data = {(0.5, 3.0): 1.0}
    assert result_to_jsonable(data) == {"0.5,3.0": 1.0}


def test_infinities_become_strings():
    assert result_to_jsonable(float("inf")) == "inf"
    assert result_to_jsonable(float("-inf")) == "-inf"
    assert result_to_jsonable(1.5) == 1.5


def test_nested_structures():
    data = {"a": [(1, 2), {"b": None}]}
    assert result_to_jsonable(data) == {"a": [[1, 2], {"b": None}]}


def test_fairness_result_round_trips(tmp_path):
    result = run_fairness(
        topology="dumbbell", total_flows=2, duration=4.0, measure_window=2.0
    )
    path = dump_result(result, tmp_path / "fairness.json")
    loaded = json.loads(path.read_text())
    assert loaded["topology"] == "dumbbell"
    assert "tcp-pr" in loaded["mean_normalized"]
    assert isinstance(loaded["throughputs"]["sack"], list)


def test_fig6_result_serializes(tmp_path):
    result = run_fig6(
        Fig6Spec(protocols=("tcp-pr",), epsilons=(500.0,), duration=3.0)
    )
    blob = result_to_jsonable(result)
    # Float dict keys become strings; values survive.
    assert "tcp-pr" in blob["throughput_mbps"]
    assert "500.0" in blob["throughput_mbps"]["tcp-pr"]
    json.dumps(blob)  # fully JSON-compatible

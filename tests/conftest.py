"""Shared test fixtures: a two-node flow harness with scriptable loss."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import pytest

from repro.core.pr import PrConfig, TcpPrSender
from repro.net.lossgen import LossModel
from repro.net.network import Network, install_static_routes
from repro.tcp.base import TcpConfig
from repro.tcp.receiver import TcpReceiver
from repro.tcp.registry import make_sender


@dataclass
class Flow:
    """A sender/receiver pair over a single duplex link."""

    network: Network
    sender: object
    receiver: TcpReceiver

    def run(self, until: float) -> None:
        self.network.run(until=until)

    @property
    def delivered(self) -> int:
        return self.receiver.delivered


def make_flow(
    variant: str,
    data_loss: Optional[LossModel] = None,
    ack_loss: Optional[LossModel] = None,
    bandwidth: float = 1e6,
    delay: float = 0.01,
    queue: int = 100,
    tcp_config: Optional[TcpConfig] = None,
    pr_config: Optional[PrConfig] = None,
    receiver_sack: bool = True,
    receiver_dsack: bool = True,
    seed: int = 0,
    start_at: float = 0.0,
) -> Flow:
    """Build a one-link flow with optional scripted loss on either path.

    Default link: 1 Mbps / 10 ms, so a 1000 B segment serializes in 8 ms
    and the no-queue RTT is ~28 ms (data serialization + 2x propagation).
    """
    net = Network(seed=seed)
    net.add_nodes("snd", "rcv")
    net.add_duplex_link(
        "snd",
        "rcv",
        bandwidth=bandwidth,
        delay=delay,
        queue=queue,
        loss_model=data_loss,
        reverse_loss_model=ack_loss,
    )
    install_static_routes(net)
    sender = make_sender(
        variant,
        net.sim,
        net.node("snd"),
        1,
        "rcv",
        tcp_config=tcp_config,
        pr_config=pr_config,
    )
    receiver = TcpReceiver(
        net.sim,
        net.node("rcv"),
        1,
        "snd",
        sack=receiver_sack,
        dsack=receiver_dsack,
    )
    sender.start(start_at)
    return Flow(network=net, sender=sender, receiver=receiver)


@pytest.fixture
def flow_factory():
    return make_flow

"""Shared test fixtures: a two-node flow harness with scriptable loss,
plus a per-test wall-clock ceiling (pytest-timeout, with a SIGALRM
fallback when the plugin is not installed)."""

from __future__ import annotations

import importlib.util
import signal
from dataclasses import dataclass
from typing import Optional

import pytest

_HAVE_PYTEST_TIMEOUT = importlib.util.find_spec("pytest_timeout") is not None


def pytest_addoption(parser):
    if not _HAVE_PYTEST_TIMEOUT:
        # Claim the ini key pytest-timeout would own, so `timeout = 120`
        # in pytest.ini works (and warns about nothing) either way.
        parser.addini(
            "timeout",
            "per-test wall-clock ceiling in seconds "
            "(pytest-timeout compatible; SIGALRM fallback)",
            default="0",
        )


if not _HAVE_PYTEST_TIMEOUT and hasattr(signal, "SIGALRM"):

    @pytest.fixture(autouse=True)
    def _test_deadline(request):
        """Fail any test that exceeds the configured wall-clock budget.

        The sweep runner only ever arms SIGALRM inside pool *workers*
        (never in this process), so the parent-side alarm here cannot
        collide with a cell timeout.
        """
        limit = float(request.config.getini("timeout") or 0)
        marker = request.node.get_closest_marker("timeout")
        if marker is not None and marker.args:
            limit = float(marker.args[0])
        if limit <= 0:
            yield
            return

        def _on_alarm(signum, frame):
            raise TimeoutError(
                f"test exceeded the {limit:g}s wall-clock ceiling"
            )

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, limit)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)

from repro.core import engine_select
from repro.core.pr import PrConfig, TcpPrSender
from repro.net.lossgen import LossModel
from repro.net.network import Network, install_static_routes
from repro.tcp.base import TcpConfig
from repro.tcp.receiver import TcpReceiver
from repro.tcp.registry import make_sender


@dataclass
class Flow:
    """A sender/receiver pair over a single duplex link."""

    network: Network
    sender: object
    receiver: TcpReceiver

    def run(self, until: float) -> None:
        self.network.run(until=until)

    @property
    def delivered(self) -> int:
        return self.receiver.delivered


def make_flow(
    variant: str,
    data_loss: Optional[LossModel] = None,
    ack_loss: Optional[LossModel] = None,
    bandwidth: float = 1e6,
    delay: float = 0.01,
    queue: int = 100,
    tcp_config: Optional[TcpConfig] = None,
    pr_config: Optional[PrConfig] = None,
    receiver_sack: bool = True,
    receiver_dsack: bool = True,
    seed: int = 0,
    start_at: float = 0.0,
) -> Flow:
    """Build a one-link flow with optional scripted loss on either path.

    Default link: 1 Mbps / 10 ms, so a 1000 B segment serializes in 8 ms
    and the no-queue RTT is ~28 ms (data serialization + 2x propagation).
    """
    net = Network(seed=seed)
    net.add_nodes("snd", "rcv")
    net.add_duplex_link(
        "snd",
        "rcv",
        bandwidth=bandwidth,
        delay=delay,
        queue=queue,
        loss_model=data_loss,
        reverse_loss_model=ack_loss,
    )
    install_static_routes(net)
    sender = make_sender(
        variant,
        net.sim,
        net.node("snd"),
        1,
        "rcv",
        tcp_config=tcp_config,
        pr_config=pr_config,
    )
    receiver = TcpReceiver(
        net.sim,
        net.node("rcv"),
        1,
        "snd",
        sack=receiver_sack,
        dsack=receiver_dsack,
    )
    sender.start(start_at)
    return Flow(network=net, sender=sender, receiver=receiver)


@pytest.fixture
def flow_factory():
    return make_flow


#: Both hot-core builds (docs/COMPILED.md).  Suites that assert
#: build-independent behavior — the golden-seed gate, the sanitizer —
#: request the ``engine`` fixture to run once per build; the compiled
#: leg auto-skips on checkouts without the C extension.
ENGINE_PARAMS = [
    "pure",
    pytest.param(
        "compiled",
        marks=pytest.mark.skipif(
            not engine_select.compiled_available(),
            reason="compiled extension not built "
            f"(`{engine_select.BUILD_HINT}`)",
        ),
    ),
]


@pytest.fixture(params=ENGINE_PARAMS)
def engine(request):
    """Force one engine build for the duration of a test."""
    with engine_select.use_engine(request.param):
        yield request.param

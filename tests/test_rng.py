"""Unit tests for the per-component RNG registry."""

from repro.sim.rng import RngRegistry


def test_same_name_returns_same_stream():
    registry = RngRegistry(7)
    assert registry.stream("a") is registry.stream("a")


def test_determinism_across_registries():
    first = RngRegistry(42).stream("link:1")
    second = RngRegistry(42).stream("link:1")
    assert [first.random() for _ in range(10)] == [
        second.random() for _ in range(10)
    ]


def test_different_names_give_independent_streams():
    registry = RngRegistry(42)
    a = [registry.stream("a").random() for _ in range(5)]
    b = [registry.stream("b").random() for _ in range(5)]
    assert a != b


def test_different_seeds_give_different_streams():
    a = RngRegistry(1).stream("x").random()
    b = RngRegistry(2).stream("x").random()
    assert a != b


def test_adding_component_does_not_perturb_existing_stream():
    solo = RngRegistry(5)
    values_solo = [solo.stream("flow").random() for _ in range(5)]

    mixed = RngRegistry(5)
    mixed.stream("other")  # created first
    values_mixed = [mixed.stream("flow").random() for _ in range(5)]
    assert values_solo == values_mixed


def test_names_listing():
    registry = RngRegistry(0)
    registry.stream("b")
    registry.stream("a")
    assert registry.names() == ["a", "b"]

"""Tests for the textual reporting helpers."""

import pytest

from repro.experiments.report import (
    ascii_bar,
    bar_chart,
    comparison_summary,
    markdown_table,
    table,
)


def test_ascii_bar_proportions():
    assert ascii_bar(5.0, 10.0, width=10) == "#####"
    assert ascii_bar(10.0, 10.0, width=10) == "##########"
    assert ascii_bar(0.0, 10.0, width=10) == ""


def test_ascii_bar_clamps():
    assert ascii_bar(20.0, 10.0, width=10) == "##########"
    assert ascii_bar(-1.0, 10.0, width=10) == ""
    assert ascii_bar(1.0, 0.0) == ""


def test_bar_chart_renders_all_rows():
    chart = bar_chart({"tcp-pr": 30.0, "sack": 1.0}, width=10)
    lines = chart.splitlines()
    assert len(lines) == 2
    assert "tcp-pr" in lines[0]
    assert lines[0].count("#") == 10
    assert lines[1].count("#") <= 1


def test_bar_chart_empty():
    assert bar_chart({}) == "(no data)"


def test_table_alignment_and_floats():
    text = table(["name", "value"], [["a", 1.23456], ["long-name", 2]])
    lines = text.splitlines()
    assert len(lines) == 4  # header, rule, two rows
    assert "1.235" in text
    assert "long-name" in text


def test_markdown_table():
    text = markdown_table(["x", "y"], [[1, 2.5]])
    lines = text.splitlines()
    assert lines[0] == "| x | y |"
    assert lines[1].startswith("|")
    assert "2.500" in lines[2]


def test_comparison_summary():
    text = comparison_summary({"tcp-pr": 30.0, "sack": 3.0}, reference="sack")
    assert "10.00x" in text


def test_comparison_summary_zero_reference():
    text = comparison_summary({"a": 5.0, "b": 0.0}, reference="b")
    assert "reference is 0" in text


def test_comparison_summary_missing_reference():
    with pytest.raises(ValueError):
        comparison_summary({"a": 1.0}, reference="zzz")

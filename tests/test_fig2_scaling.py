"""Unit tests for Figure 2's constant-per-flow-share dumbbell scaling."""

import pytest

from repro.experiments.fig2_fairness import (
    DUMBBELL_PER_FLOW_BPS,
    PAPER_FLOW_COUNTS,
    QUICK_FLOW_COUNTS,
)


def test_reference_point_matches_15mbps_at_8_flows():
    assert DUMBBELL_PER_FLOW_BPS * 8 == pytest.approx(15e6)


def test_flow_count_sweeps_are_even():
    """The fairness runner requires an even split of the two protocols."""
    for count in (*QUICK_FLOW_COUNTS, *PAPER_FLOW_COUNTS):
        assert count % 2 == 0 and count >= 2


def test_paper_counts_match_figure2_axis():
    assert tuple(PAPER_FLOW_COUNTS) == (4, 8, 16, 32, 64)


def test_scaling_keeps_per_flow_share_constant():
    """Reconstruct the spec exactly as run_fig2 builds it and check the
    per-flow share and queue-per-flow stay fixed across the sweep."""
    for count in PAPER_FLOW_COUNTS:
        bandwidth = max(15e6, DUMBBELL_PER_FLOW_BPS * count)
        scale = max(1.0, count / 8.0)
        queue = int(100 * scale)
        if count >= 8:
            assert bandwidth / count == pytest.approx(DUMBBELL_PER_FLOW_BPS)
            assert queue / count == pytest.approx(100 / 8)

"""Randomized robustness: every variant survives hostile conditions.

Phase 1 subjects a flow to simultaneous data loss, ACK loss, and
two-path reordering; phase 2 heals the channel.  Invariants:

* the flow never deadlocks — after healing, delivery resumes;
* the receiver's cumulative point only grows and its buffered set stays
  consistent;
* senders respect the advertised receiver window.

Hypothesis drives the seeds and loss rates (a few examples per variant;
each example is a full mini-simulation).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.pr import PrConfig
from repro.net.lossgen import BernoulliLoss
from repro.net.network import Network, install_static_routes
from repro.routing.multipath import EpsilonMultipathPolicy
from repro.tcp.base import TcpConfig
from repro.tcp.receiver import TcpReceiver
from repro.tcp.registry import make_sender

VARIANTS = ["tcp-pr", "sack", "newreno", "tdfr", "ewma"]


def _chaos_run(variant: str, seed: int, loss_rate: float):
    net = Network(seed=seed)
    net.add_nodes("snd", "rcv")
    for k in range(2):
        mids = [f"p{k}m{i}" for i in range(k + 1)]
        for m in mids:
            net.add_node(m)
        chain = ["snd", *mids, "rcv"]
        for i, (u, v) in enumerate(zip(chain, chain[1:])):
            data_loss = (
                BernoulliLoss(loss_rate, net.sim.rng.stream(f"dl{k}{i}"))
                if i == 0
                else None
            )
            ack_loss = (
                BernoulliLoss(loss_rate, net.sim.rng.stream(f"al{k}{i}"))
                if i == 0
                else None
            )
            net.add_duplex_link(
                u, v, bandwidth=5e6, delay=0.01, queue=200,
                loss_model=data_loss, reverse_loss_model=ack_loss,
            )
    install_static_routes(net)
    EpsilonMultipathPolicy(net, "snd", epsilon=0.0, destinations=["rcv"]).install()
    EpsilonMultipathPolicy(net, "rcv", epsilon=0.0, destinations=["snd"]).install()

    sender = make_sender(
        variant, net.sim, net.node("snd"), 1, "rcv",
        tcp_config=TcpConfig(initial_ssthresh=32),
        pr_config=PrConfig(initial_ssthresh=32),
    )
    receiver = TcpReceiver(net.sim, net.node("rcv"), 1, "snd")
    sender.start(0.0)

    # Phase 1: chaos.
    net.run(until=8.0)
    delivered_mid = receiver.delivered
    # Phase 2: heal every lossy link.
    for link in net.links.values():
        if isinstance(link.loss_model, BernoulliLoss):
            link.loss_model.rate = 0.0
    net.run(until=20.0)
    return net, sender, receiver, delivered_mid


@pytest.mark.parametrize("variant", VARIANTS)
@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    loss_rate=st.floats(min_value=0.0, max_value=0.15),
)
def test_chaos_then_heal(variant, seed, loss_rate):
    net, sender, receiver, delivered_mid = _chaos_run(variant, seed, loss_rate)

    # Progress resumed after healing (no deadlock).
    assert receiver.delivered > delivered_mid, (
        f"{variant} deadlocked: {delivered_mid} -> {receiver.delivered}"
    )
    # Healed channel: real delivery in phase 2 (>= 2% of the 12s
    # single-path capacity).  Deliberately far below fair share: a
    # variant coming out of deep exponential backoff after ~12% data+ACK
    # loss can legitimately spend seconds ramping (Hypothesis found
    # newreno at 660 and sack lower still against a 750-packet bar), and
    # this assertion is about starvation, not throughput — the deadlock
    # check above already catches zero progress.
    phase2 = receiver.delivered - delivered_mid
    assert phase2 > 0.02 * 625 * 12, f"{variant} starved after healing"

    # Receiver consistency.
    assert receiver.rcv_nxt >= 0
    for start, end in receiver.sack_runs():
        assert start > receiver.rcv_nxt - 1
        assert end > start

    # Window discipline.
    if hasattr(sender, "to_be_ack"):  # TCP-PR
        assert len(sender.to_be_ack) <= sender.config.receiver_window
    else:
        assert sender.flightsize() <= sender.config.receiver_window

    # No packets wandered into the void: every data packet was either
    # delivered to an agent, dropped at a link, or is still in flight.
    assert net.dead_letters() == 0


# ----------------------------------------------------------------------
# Randomized fault schedules: never a deadlock
# ----------------------------------------------------------------------
@pytest.mark.faults
@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    outage_starts=st.lists(
        st.floats(min_value=0.5, max_value=10.0), min_size=0, max_size=3
    ),
    outage_len=st.floats(min_value=0.1, max_value=2.0),
    spike_factor=st.floats(min_value=1.5, max_value=8.0),
    ack_rate=st.floats(min_value=0.2, max_value=1.0),
    blackout_path=st.integers(min_value=0, max_value=3),
)
def test_random_fault_schedule_never_deadlocks(
    seed, outage_starts, outage_len, spike_factor, ack_rate, blackout_path
):
    """Any restorable fault schedule either completes or trips the
    watchdog — the event loop never silently wedges."""
    from repro.faults import (
        AckLoss, DelaySpike, FaultSchedule, PathBlackout, inject,
    )
    from repro.topologies.multipath_mesh import (
        MultipathMeshSpec, build_multipath_mesh, install_epsilon_routing,
    )
    from repro.app.bulk import BulkTransfer

    duration = 14.0
    events = [
        PathBlackout(time=1.0, duration=2.0, origin="src", dst="dst",
                     path_index=blackout_path),
        DelaySpike(time=2.0, duration=1.0, src="src", dst="p0m0",
                   factor=spike_factor),
        AckLoss(time=3.0, duration=1.5, src="p0m0", dst="src",
                rate=ack_rate),
    ]
    schedule = FaultSchedule(events)
    for start in outage_starts:
        schedule = schedule.extend(
            FaultSchedule.link_outage(
                "src", "p0m0", start=start, duration=outage_len, flush=True
            )
        )

    net = build_multipath_mesh(MultipathMeshSpec(seed=seed))
    install_epsilon_routing(net, epsilon=0.0)
    inject(net, schedule)
    flow = BulkTransfer(net, "tcp-pr", "src", "dst", flow_id=1)

    # The watchdog is the test: a livelock or runaway loop raises
    # instead of hanging the suite.
    net.run(until=duration, livelock_threshold=1_000_000, deadline=60.0)
    assert net.sim.now == duration
    # Every fault in this schedule is restorable and ends well before
    # `duration`; with three untouched paths the flow must make progress.
    assert schedule.horizon < duration
    assert flow.delivered_bytes() > 0
    assert net.dead_letters() == 0


# ----------------------------------------------------------------------
# Randomized sweep failures: serial == parallel partial results
# ----------------------------------------------------------------------
@pytest.mark.faults
@settings(max_examples=10, deadline=None)
@given(
    plan=st.lists(
        st.sampled_from(["ok", "boom", "flaky"]), min_size=1, max_size=8
    ),
    seed=st.integers(min_value=0, max_value=1_000),
)
def test_random_failure_mix_serial_matches_parallel(plan, seed):
    """keep_going partial results (values AND error records) are
    bit-identical across jobs=1 and jobs=4 for any failure mix."""
    from repro.exec.runner import CellError, ParallelRunner
    from repro.exec.spec import SweepCell
    from repro.exec.testing import BOOM_CELL, FLAKY_CELL, OK_CELL

    cells = []
    for index, kind in enumerate(plan):
        cell_seed = seed + index
        if kind == "ok":
            cells.append(SweepCell(key=index, func=OK_CELL,
                                   params={"value": index}, seed=cell_seed))
        elif kind == "boom":
            cells.append(SweepCell(key=index, func=BOOM_CELL,
                                   params={"message": f"boom-{index}"},
                                   seed=cell_seed))
        else:  # first attempt fails deterministically, retry succeeds
            cells.append(SweepCell(key=index, func=FLAKY_CELL,
                                   params={"fail_seed": cell_seed},
                                   seed=cell_seed))

    serial = ParallelRunner(jobs=1, retries=1, backoff=0.0,
                            keep_going=True).run_cells(cells)
    parallel = ParallelRunner(jobs=4, retries=1, backoff=0.0,
                              keep_going=True).run_cells(cells)
    assert serial == parallel
    assert list(serial) == list(range(len(plan)))  # cell order preserved
    for index, kind in enumerate(plan):
        assert isinstance(serial[index], CellError) == (kind == "boom")

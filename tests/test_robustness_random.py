"""Randomized robustness: every variant survives hostile conditions.

Phase 1 subjects a flow to simultaneous data loss, ACK loss, and
two-path reordering; phase 2 heals the channel.  Invariants:

* the flow never deadlocks — after healing, delivery resumes;
* the receiver's cumulative point only grows and its buffered set stays
  consistent;
* senders respect the advertised receiver window.

Hypothesis drives the seeds and loss rates (a few examples per variant;
each example is a full mini-simulation).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.pr import PrConfig
from repro.net.lossgen import BernoulliLoss
from repro.net.network import Network, install_static_routes
from repro.routing.multipath import EpsilonMultipathPolicy
from repro.tcp.base import TcpConfig
from repro.tcp.receiver import TcpReceiver
from repro.tcp.registry import make_sender

VARIANTS = ["tcp-pr", "sack", "newreno", "tdfr", "ewma"]


def _chaos_run(variant: str, seed: int, loss_rate: float):
    net = Network(seed=seed)
    net.add_nodes("snd", "rcv")
    for k in range(2):
        mids = [f"p{k}m{i}" for i in range(k + 1)]
        for m in mids:
            net.add_node(m)
        chain = ["snd", *mids, "rcv"]
        for i, (u, v) in enumerate(zip(chain, chain[1:])):
            data_loss = (
                BernoulliLoss(loss_rate, net.sim.rng.stream(f"dl{k}{i}"))
                if i == 0
                else None
            )
            ack_loss = (
                BernoulliLoss(loss_rate, net.sim.rng.stream(f"al{k}{i}"))
                if i == 0
                else None
            )
            net.add_duplex_link(
                u, v, bandwidth=5e6, delay=0.01, queue=200,
                loss_model=data_loss, reverse_loss_model=ack_loss,
            )
    install_static_routes(net)
    EpsilonMultipathPolicy(net, "snd", epsilon=0.0, destinations=["rcv"]).install()
    EpsilonMultipathPolicy(net, "rcv", epsilon=0.0, destinations=["snd"]).install()

    sender = make_sender(
        variant, net.sim, net.node("snd"), 1, "rcv",
        tcp_config=TcpConfig(initial_ssthresh=32),
        pr_config=PrConfig(initial_ssthresh=32),
    )
    receiver = TcpReceiver(net.sim, net.node("rcv"), 1, "snd")
    sender.start(0.0)

    # Phase 1: chaos.
    net.run(until=8.0)
    delivered_mid = receiver.delivered
    # Phase 2: heal every lossy link.
    for link in net.links.values():
        if isinstance(link.loss_model, BernoulliLoss):
            link.loss_model.rate = 0.0
    net.run(until=20.0)
    return net, sender, receiver, delivered_mid


@pytest.mark.parametrize("variant", VARIANTS)
@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    loss_rate=st.floats(min_value=0.0, max_value=0.15),
)
def test_chaos_then_heal(variant, seed, loss_rate):
    net, sender, receiver, delivered_mid = _chaos_run(variant, seed, loss_rate)

    # Progress resumed after healing (no deadlock).
    assert receiver.delivered > delivered_mid, (
        f"{variant} deadlocked: {delivered_mid} -> {receiver.delivered}"
    )
    # Healed channel: solid delivery in phase 2 (>= ~15% of the 12s
    # single-path capacity, a loose no-starvation bar that tolerates the
    # slow post-blackout ramp of conservative variants).
    phase2 = receiver.delivered - delivered_mid
    assert phase2 > 0.10 * 625 * 12, f"{variant} starved after healing"

    # Receiver consistency.
    assert receiver.rcv_nxt >= 0
    for start, end in receiver.sack_runs():
        assert start > receiver.rcv_nxt - 1
        assert end > start

    # Window discipline.
    if hasattr(sender, "to_be_ack"):  # TCP-PR
        assert len(sender.to_be_ack) <= sender.config.receiver_window
    else:
        assert sender.flightsize() <= sender.config.receiver_window

    # No packets wandered into the void: every data packet was either
    # delivered to an agent, dropped at a link, or is still in flight.
    assert net.dead_letters() == 0

"""Tests for trace distillation (repro.traces.profile).

Hand-built streams with known delays drive :func:`distill_profile`;
the serialization round-trip and the determinism property of
:meth:`ReorderProfile.sampler` (seed-derived via ``derive_child_seed``)
are the load-bearing guarantees for replay.
"""

import pytest

from repro.sim.rng import derive_child_seed
from repro.traces import ReorderProfile, TraceStream, distill_profile
from repro.traces.profile import PROFILE_RECORD


def _trace(time, kind, seq, *, uid, flow=1, retransmit=False, path=None):
    return {
        "record": "trace", "time": time, "kind": kind,
        "where": "src" if kind == "send" else "dst",
        "packet_uid": uid, "flow_id": flow, "flow_seq": 0,
        "packet_kind": "data", "seq": seq, "ack": -1,
        "retransmit": retransmit, "path": path,
    }


def _known_stream():
    """Ten sends 0.1 s apart; delays 50 ms + per-seq extra; seq 5 lost."""
    records = []
    for seq in range(10):
        send_time = 0.1 * seq
        records.append(_trace(send_time, "send", seq, uid=seq,
                              path="p0" if seq % 2 == 0 else "p1"))
        if seq == 5:
            continue  # never arrives
        extra = 0.002 * seq
        records.append(_trace(send_time + 0.05 + extra, "recv", seq, uid=seq))
    # A retransmission of the lost segment: excluded from the delay
    # distribution and from the loss denominator.
    records.append(_trace(2.0, "send", 5, uid=99, retransmit=True))
    records.append(_trace(2.05, "recv", 5, uid=99))
    for index, record in enumerate(sorted(records, key=lambda r: r["time"])):
        record["flow_seq"] = index
    return TraceStream(records)


# ----------------------------------------------------------------------
# Distillation ground truth
# ----------------------------------------------------------------------
def test_distill_base_delay_is_propagation_floor():
    profile = distill_profile(_known_stream())
    assert profile.base_delay == pytest.approx(0.05)


def test_distill_extras_are_sorted_empirical_samples():
    profile = distill_profile(_known_stream())
    # seqs 0..9 minus the lost seq 5: extras 0.002 * seq.
    expected = sorted(0.002 * seq for seq in range(10) if seq != 5)
    assert profile.extra_delays == pytest.approx(tuple(expected))
    assert profile.extra_delays == tuple(sorted(profile.extra_delays))


def test_distill_loss_counts_matured_unarrived_originals():
    profile = distill_profile(_known_stream())
    # 10 matured originals, seq 5 never arrived as an original.
    assert profile.loss_rate == pytest.approx(0.1)


def test_distill_excludes_retransmissions_from_schedule():
    profile = distill_profile(_known_stream())
    assert len(profile.send_times) == 10  # originals only
    assert profile.send_times[0] == 0.0  # shifted to start at zero
    assert profile.send_seqs == tuple(range(10))


def test_distill_groups_extras_by_path():
    profile = distill_profile(_known_stream())
    paths = dict(profile.path_extras)
    assert set(paths) == {"p0", "p1"}
    # Even seqs (minus nothing) rode p0; odd seqs (minus lost 5) rode p1.
    assert len(paths["p0"]) == 5
    assert len(paths["p1"]) == 4


def test_distill_requires_matched_pairs():
    records = [_trace(0.0, "send", 0, uid=0)]
    with pytest.raises(ValueError, match="no matched send/arrival pairs"):
        distill_profile(TraceStream(records))


def test_distill_flow_selection_errors_list_known_flows():
    records = [
        _trace(0.0, "send", 0, uid=0, flow=1),
        _trace(0.1, "recv", 0, uid=0, flow=1),
        _trace(0.0, "send", 0, uid=1, flow=2),
        _trace(0.1, "recv", 0, uid=1, flow=2),
    ]
    stream = TraceStream(records)
    with pytest.raises(ValueError, match="pass flow_id="):
        distill_profile(stream)
    profile = distill_profile(stream, flow_id=2)
    assert profile.source_flow.endswith("flow=2")
    with pytest.raises(ValueError, match="matches 0 flows"):
        distill_profile(stream, flow_id=7)


# ----------------------------------------------------------------------
# Serialization round-trip
# ----------------------------------------------------------------------
def test_record_round_trip_preserves_every_field():
    profile = distill_profile(_known_stream(), name="known")
    clone = ReorderProfile.from_record(profile.to_record())
    assert clone == profile
    assert clone.to_record()["record"] == PROFILE_RECORD


def test_save_load_round_trip(tmp_path):
    profile = distill_profile(_known_stream(), name="known")
    path = profile.save(tmp_path / "profile.json")
    assert ReorderProfile.load(path) == profile


def test_from_record_rejects_other_record_types():
    with pytest.raises(ValueError, match=PROFILE_RECORD):
        ReorderProfile.from_record({"record": "metric", "base_delay": 0.0})


def test_profile_validation():
    with pytest.raises(ValueError, match="base_delay"):
        ReorderProfile(name="x", base_delay=-1.0, extra_delays=(),
                       loss_rate=0.0)
    with pytest.raises(ValueError, match="loss_rate"):
        ReorderProfile(name="x", base_delay=0.0, extra_delays=(),
                       loss_rate=1.5)
    with pytest.raises(ValueError, match="parallel"):
        ReorderProfile(name="x", base_delay=0.0, extra_delays=(),
                       loss_rate=0.0, send_times=(0.0,), send_seqs=())


# ----------------------------------------------------------------------
# Deterministic sampling (the property replay relies on)
# ----------------------------------------------------------------------
def test_sampler_is_deterministic_under_equal_seeds():
    profile = distill_profile(_known_stream())
    draws = [
        [profile.sample_path_delay(profile.sampler(seed=7))
         for _ in range(200)]
        for _ in range(2)
    ]
    assert draws[0] == draws[1]


def test_sampler_differs_across_seeds():
    profile = distill_profile(_known_stream())
    one = [profile.sample_path_delay(profile.sampler(seed=1))
           for _ in range(200)]
    two = [profile.sample_path_delay(profile.sampler(seed=2))
           for _ in range(200)]
    assert one != two


def test_sampler_uses_derived_child_seed():
    profile = distill_profile(_known_stream())
    import random

    expected = random.Random(derive_child_seed(11, "replay.delay"))  # lint: allow-module-random(fixed-seed fixture stream; the literal seed keeps the test deterministic)
    rng = profile.sampler(seed=11)
    assert [rng.random() for _ in range(5)] == [
        expected.random() for _ in range(5)
    ]


def test_samples_come_from_the_empirical_support():
    profile = distill_profile(_known_stream())
    rng = profile.sampler(seed=3)
    pooled = set(profile.extra_delays)
    for _ in range(500):
        path, extra = profile.sample_path_delay(rng)
        assert extra in pooled
        assert path in {"p0", "p1"}
    assert profile.sample_extra_delay(rng) in pooled

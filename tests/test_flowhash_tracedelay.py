"""Tests for per-flow ECMP hashing and trace-replay delays."""

import pytest

from repro.analysis.reordering import reordering_ratio
from repro.app.bulk import BulkTransfer
from repro.net.delays import TraceDelay
from repro.net.network import Network, install_static_routes
from repro.net.packet import Packet
from repro.routing.multipath import EpsilonMultipathPolicy, FlowHashPolicy


def _two_path_net(seed=3):
    net = Network(seed=seed)
    net.add_nodes("s", "d")
    for k in range(2):
        mids = [f"p{k}m{i}" for i in range(k + 1)]
        for m in mids:
            net.add_node(m)
        chain = ["s", *mids, "d"]
        for u, v in zip(chain, chain[1:]):
            net.add_duplex_link(u, v, bandwidth=1e7, delay=0.01, queue=500)
    install_static_routes(net)
    return net


# ----------------------------------------------------------------------
# FlowHashPolicy
# ----------------------------------------------------------------------
def test_flow_hash_is_stable_per_flow():
    net = _two_path_net()
    policy = FlowHashPolicy(net, "s", destinations=["d"])
    routes = {policy.path_for_flow("d", 7) for _ in range(50)}
    assert len(routes) == 1  # same flow, same path, always


def test_flow_hash_spreads_flows_across_paths():
    net = _two_path_net()
    policy = FlowHashPolicy(net, "s", destinations=["d"])
    chosen = {policy.path_for_flow("d", fid) for fid in range(40)}
    assert len(chosen) == 2  # both paths carry some flows


def test_flow_hash_unknown_destination_falls_through():
    net = _two_path_net()
    policy = FlowHashPolicy(net, "s", destinations=["d"])
    assert policy.choose_route(Packet("data", "s", "elsewhere", flow_id=1)) is None


def test_flow_hash_does_not_reorder_tcp():
    """ECMP hashing keeps each flow on one path: in-order delivery and
    full standard-TCP throughput — at a single path's rate.  (A finite
    initial ssthresh avoids overshoot losses, whose retransmissions
    would register as reordered arrivals and muddy the measurement.)"""
    from repro.tcp.base import TcpConfig

    net = _two_path_net()
    FlowHashPolicy(net, "s", destinations=["d"]).install()
    flow = BulkTransfer(net, "sack", "s", "d", flow_id=1,
                        tcp_config=TcpConfig(initial_ssthresh=32))
    net.run(until=10.0)
    assert flow.sender.stats.retransmits == 0
    assert flow.receiver.reordered_arrivals == 0
    mbps = flow.delivered_bytes() * 8 / 10 / 1e6
    assert 7.0 < mbps <= 10.2  # one 10 Mbps path, not two


def test_per_packet_policy_reorders_where_hashing_does_not():
    net = _two_path_net()
    EpsilonMultipathPolicy(net, "s", epsilon=0.0, destinations=["d"]).install()
    flow = BulkTransfer(net, "sack", "s", "d", flow_id=1)
    net.run(until=10.0)
    assert flow.receiver.reordered_arrivals > 0


# ----------------------------------------------------------------------
# TraceDelay
# ----------------------------------------------------------------------
def test_trace_delay_cycles():
    model = TraceDelay([0.01, 0.02, 0.03])
    packet = Packet("data", "a", "b", flow_id=1)
    observed = [model.delay_for(packet) for _ in range(7)]
    assert observed == [0.01, 0.02, 0.03, 0.01, 0.02, 0.03, 0.01]


def test_trace_delay_validates():
    with pytest.raises(ValueError):
        TraceDelay([])
    with pytest.raises(ValueError):
        TraceDelay([0.01, -0.5])


def test_trace_delay_reorders_when_trace_says_so():
    net = Network(seed=0)
    net.add_nodes("a", "b")
    # Every 4th packet is delayed an extra 50 ms: guaranteed reordering.
    trace = TraceDelay([0.01, 0.01, 0.01, 0.06])
    net.add_link("a", "b", bandwidth=1e8, delay=0.01, queue=1000,
                 delay_model=trace)
    install_static_routes(net)
    arrivals = []

    class Sink:
        def receive(self, packet):
            arrivals.append(packet.seq)

    net.node("b").agents[1] = Sink()

    def burst():
        for i in range(100):
            net.node("a").send(Packet("data", "a", "b", flow_id=1, seq=i))

    net.sim.schedule(0.0, burst)
    net.run(until=2.0)
    assert len(arrivals) == 100
    assert reordering_ratio(arrivals) > 0.1

"""Behavioural tests for the base sender / classic Reno."""

import pytest

from repro.net.lossgen import DeterministicLoss
from repro.tcp.base import TcpConfig

from conftest import make_flow


def test_bulk_transfer_completes():
    flow = make_flow("reno", tcp_config=TcpConfig(total_segments=50))
    flow.run(until=10.0)
    assert flow.delivered == 50
    assert flow.sender.done


def test_no_loss_means_no_retransmits():
    flow = make_flow("reno", tcp_config=TcpConfig(total_segments=100))
    flow.run(until=10.0)
    assert flow.sender.stats.retransmits == 0
    assert flow.sender.stats.timeouts == 0
    assert flow.receiver.duplicates == 0


def test_slow_start_doubles_window():
    flow = make_flow("reno", bandwidth=1e8, delay=0.05)
    # With a fat link there are no drops; after k RTTs cwnd ~ 2^k.
    flow.run(until=0.35)  # a bit over 3 RTTs (RTT = 100 ms)
    assert flow.sender.cwnd >= 6.0
    assert flow.sender.stats.retransmits == 0


def test_congestion_avoidance_above_ssthresh():
    flow = make_flow(
        "reno",
        bandwidth=1e8,
        delay=0.05,
        tcp_config=TcpConfig(initial_ssthresh=4.0),
    )
    flow.run(until=0.5)
    # Growth is ~1 segment/RTT above ssthresh=4: far below doubling.
    assert 4.0 <= flow.sender.cwnd <= 12.0


def test_fast_retransmit_on_single_loss():
    # Drop the 11th data arrival once; dupacks trigger fast retransmit.
    flow = make_flow("reno", data_loss=DeterministicLoss([10]))
    flow.run(until=5.0)
    assert flow.sender.stats.fast_retransmits == 1
    assert flow.sender.stats.timeouts == 0
    assert flow.sender.stats.retransmits == 1
    assert flow.delivered > 100  # flow kept going


def test_window_halves_after_fast_retransmit():
    flow = make_flow("reno", data_loss=DeterministicLoss([30]))
    flow.run(until=5.0)
    stats = flow.sender.stats
    assert stats.fast_retransmits == 1
    assert flow.sender.ssthresh < stats.cwnd_peak


def test_timeout_on_total_blackout():
    """If every data packet after the 5th is lost, the sender must RTO."""
    flow = make_flow(
        "reno", data_loss=DeterministicLoss(range(5, 100_000))
    )
    flow.run(until=10.0)
    assert flow.sender.stats.timeouts >= 2  # with exponential backoff
    assert flow.sender.cwnd == 1.0
    assert flow.sender.rto.backoff > 1


def test_timeout_resets_to_slow_start():
    # A short blackout forces RTOs; each RTO round consumes one link
    # arrival, so the blackout must be short enough for the backoff
    # series to traverse it within the run.
    flow = make_flow("reno", data_loss=DeterministicLoss(range(5, 13)))
    flow.run(until=30.0)
    stats = flow.sender.stats
    assert stats.timeouts >= 1
    assert flow.delivered > 100


def test_ack_loss_tolerated_by_cumulative_acks():
    # Drop 30% of ACKs: cumulative ACKs cover the gaps, no collapse.
    import random

    from repro.net.lossgen import BernoulliLoss

    flow = make_flow("reno", ack_loss=BernoulliLoss(0.3, random.Random(1)))  # lint: allow-module-random(fixed-seed fixture stream; the literal seed keeps the test deterministic)
    flow.run(until=10.0)
    # 1 Mbps bottleneck = 125 seg/s max.
    assert flow.delivered > 0.5 * 125 * 10


def test_limited_transmit_sends_on_first_dupacks():
    config = TcpConfig(limited_transmit=True)
    flow = make_flow("reno", data_loss=DeterministicLoss([20]), tcp_config=config)
    flow.run(until=5.0)
    with_lt = flow.sender.stats.data_packets_sent

    config = TcpConfig(limited_transmit=False)
    flow2 = make_flow("reno", data_loss=DeterministicLoss([20]), tcp_config=config)
    flow2.run(until=5.0)
    assert with_lt >= flow2.sender.stats.data_packets_sent


def test_receiver_window_caps_flight():
    flow = make_flow(
        "reno",
        bandwidth=1e8,
        delay=0.05,
        tcp_config=TcpConfig(receiver_window=5),
    )
    flow.run(until=2.0)
    assert flow.sender.flightsize() <= 5
    assert flow.sender.stats.retransmits == 0


def test_rtt_samples_track_path():
    flow = make_flow("reno", bandwidth=1e6, delay=0.01)
    flow.run(until=3.0)
    # No-queue RTT is 28 ms (8 ms data serialization + 20 ms props);
    # queueing can only raise it.
    assert flow.sender.srtt is not None
    assert flow.sender.srtt >= 0.027
    # Karn timing: roughly one sample per RTT (and the queue stretches
    # the RTT badly on a 1 Mbps link), so only a handful of samples.
    assert flow.sender.stats.rtt_samples >= 3


def test_throughput_saturates_bottleneck():
    # A finite initial ssthresh avoids the slow-start overshoot (which
    # classic Reno, unlike NewReno/SACK, recovers from only via RTO).
    flow = make_flow(
        "reno", bandwidth=2e6, delay=0.01, tcp_config=TcpConfig(initial_ssthresh=64)
    )
    flow.run(until=10.0)
    capacity_segments = 2e6 / 8000 * 10
    assert flow.delivered >= 0.85 * capacity_segments


def test_stats_cwnd_peak_recorded():
    flow = make_flow("reno")
    flow.run(until=3.0)
    assert flow.sender.stats.cwnd_peak >= flow.sender.cwnd - 1

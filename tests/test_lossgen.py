"""Unit tests for artificial loss models."""

import random

import pytest

from repro.net.lossgen import BernoulliLoss, DeterministicLoss, NoLoss
from repro.net.packet import Packet


def _packet():
    return Packet("data", "a", "b", flow_id=1)


def test_no_loss_never_drops():
    model = NoLoss()
    assert not any(model.should_drop(_packet()) for _ in range(100))


def test_bernoulli_zero_and_one():
    never = BernoulliLoss(0.0, random.Random(1))  # lint: allow-module-random(fixed-seed fixture stream; the literal seed keeps the test deterministic)
    always = BernoulliLoss(1.0, random.Random(1))  # lint: allow-module-random(fixed-seed fixture stream; the literal seed keeps the test deterministic)
    assert not any(never.should_drop(_packet()) for _ in range(50))
    assert all(always.should_drop(_packet()) for _ in range(50))


def test_bernoulli_rate_approximation():
    model = BernoulliLoss(0.3, random.Random(7))  # lint: allow-module-random(fixed-seed fixture stream; the literal seed keeps the test deterministic)
    drops = sum(model.should_drop(_packet()) for _ in range(10_000))
    assert 0.27 < drops / 10_000 < 0.33


def test_bernoulli_rejects_bad_rate():
    with pytest.raises(ValueError):
        BernoulliLoss(1.5, random.Random(1))  # lint: allow-module-random(fixed-seed fixture stream; the literal seed keeps the test deterministic)
    with pytest.raises(ValueError):
        BernoulliLoss(-0.1, random.Random(1))  # lint: allow-module-random(fixed-seed fixture stream; the literal seed keeps the test deterministic)


def test_deterministic_drops_exact_ordinals():
    model = DeterministicLoss([0, 2, 5])
    results = [model.should_drop(_packet()) for _ in range(7)]
    assert results == [True, False, True, False, False, True, False]

"""Tests for the topology builders (Figures 1 and 5, plus the dumbbell)."""

import pytest

from repro.routing.multipath import discover_paths
from repro.topologies.dumbbell import DumbbellSpec, build_dumbbell
from repro.topologies.multipath_mesh import (
    MultipathMeshSpec,
    build_multipath_mesh,
    install_epsilon_routing,
)
from repro.topologies.parking_lot import (
    CROSS_TRAFFIC_PAIRS,
    ParkingLotSpec,
    build_parking_lot,
)
from repro.util.units import MBPS


# ----------------------------------------------------------------------
# Dumbbell
# ----------------------------------------------------------------------
def test_dumbbell_structure():
    net = build_dumbbell(DumbbellSpec(num_pairs=3))
    assert set(net.nodes) == {"r0", "r1", "s0", "s1", "s2", "d0", "d1", "d2"}
    # 1 bottleneck + 6 access links, both directions.
    assert len(net.links) == 14


def test_dumbbell_bottleneck_parameters():
    spec = DumbbellSpec(bottleneck_bandwidth=5 * MBPS, bottleneck_delay=0.02)
    net = build_dumbbell(spec)
    link = net.link("r0", "r1")
    assert link.bandwidth == pytest.approx(5 * MBPS)
    assert link.delay == pytest.approx(0.02)


def test_dumbbell_routes_end_to_end():
    net = build_dumbbell(DumbbellSpec(num_pairs=2))
    assert net.node("s0").routes["d0"] == "r0"
    assert net.node("r0").routes["d1"] == "r1"
    assert net.node("r1").routes["s0"] == "r0"


def test_dumbbell_rtt_floor():
    spec = DumbbellSpec(bottleneck_delay=0.010, access_delay=0.002)
    assert spec.rtt_floor() == pytest.approx(2 * (0.010 + 0.004))


def test_dumbbell_rejects_zero_pairs():
    with pytest.raises(ValueError):
        build_dumbbell(DumbbellSpec(num_pairs=0))


# ----------------------------------------------------------------------
# Parking lot (Figure 1)
# ----------------------------------------------------------------------
def test_parking_lot_nodes_and_cross_pairs():
    net = build_parking_lot(ParkingLotSpec())
    for name in ("S", "D", "n1", "n2", "n3", "n4", "CS1", "CS2", "CS3",
                 "CD1", "CD2", "CD3"):
        assert name in net.nodes
    assert len(CROSS_TRAFFIC_PAIRS) == 6


def test_parking_lot_paper_bandwidths():
    """The caption's asymmetric ingress rates: CS1->1 = 5 Mbps,
    CS2->2 = 1.66 Mbps, CS3->3 = 2.5 Mbps, everything else 15 Mbps."""
    net = build_parking_lot(ParkingLotSpec())
    assert net.link("CS1", "n1").bandwidth == pytest.approx(5 * MBPS)
    assert net.link("CS2", "n2").bandwidth == pytest.approx(1.66 * MBPS)
    assert net.link("CS3", "n3").bandwidth == pytest.approx(2.5 * MBPS)
    for src, dst in (("n1", "n2"), ("n2", "n3"), ("n3", "n4"), ("S", "n1")):
        assert net.link(src, dst).bandwidth == pytest.approx(15 * MBPS)


def test_parking_lot_main_path_crosses_all_bottlenecks():
    net = build_parking_lot(ParkingLotSpec())
    # S -> D goes through n1, n2, n3, n4.
    hops = []
    current = "S"
    while current != "D":
        nxt = net.node(current).routes["D"]
        hops.append(nxt)
        current = nxt
    assert hops == ["n1", "n2", "n3", "n4", "D"]


def test_parking_lot_cross_routes_exist():
    net = build_parking_lot(ParkingLotSpec())
    for cs, cd in CROSS_TRAFFIC_PAIRS:
        assert cd in net.node(cs).routes


# ----------------------------------------------------------------------
# Multipath mesh (Figure 5)
# ----------------------------------------------------------------------
def test_mesh_has_requested_disjoint_paths():
    spec = MultipathMeshSpec(num_paths=4)
    net = build_multipath_mesh(spec)
    paths = discover_paths(net, "src", "dst")
    assert len(paths) == 4
    # Hop counts 2, 3, 4, 5 at 10 ms per link.
    assert paths.costs == pytest.approx([0.02, 0.03, 0.04, 0.05])


def test_mesh_paper_link_parameters():
    net = build_multipath_mesh(MultipathMeshSpec())
    for link in net.links.values():
        assert link.bandwidth == pytest.approx(10 * MBPS)
        assert link.queue.capacity == 100
        assert link.delay == pytest.approx(0.010)


def test_mesh_60ms_variant():
    net = build_multipath_mesh(MultipathMeshSpec(link_delay=0.060))
    assert net.link("src", "p0m0").delay == pytest.approx(0.060)


def test_mesh_epsilon_routing_install():
    net = build_multipath_mesh(MultipathMeshSpec(num_paths=3))
    policy = install_epsilon_routing(net, epsilon=0.0)
    assert net.node("src").path_policy is policy
    assert net.node("dst").path_policy is not None
    weights = policy.weights_for("dst")
    assert weights == pytest.approx([1 / 3] * 3)


def test_mesh_epsilon_500_is_effectively_single_path():
    net = build_multipath_mesh(MultipathMeshSpec(num_paths=4))
    policy = install_epsilon_routing(net, epsilon=500.0)
    weights = policy.weights_for("dst")
    assert weights[0] == pytest.approx(1.0)


def test_mesh_rejects_zero_paths():
    with pytest.raises(ValueError):
        build_multipath_mesh(MultipathMeshSpec(num_paths=0))

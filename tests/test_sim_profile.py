"""Tests for simulator profiling (repro.sim.profile / Simulator.stats)."""

import pytest

from repro.sim import Simulator
from repro.sim.profile import UNLABELED, SimProfile, build_stats, group_label

from conftest import make_flow


# ----------------------------------------------------------------------
# Label grouping
# ----------------------------------------------------------------------
def test_group_label_drops_digit_tokens():
    assert group_label("pr timer f1 s23") == "pr timer"
    assert group_label("tx src->p0m0") == "tx"
    assert group_label("rto timer") == "rto timer"
    assert group_label("f1 s23") == UNLABELED
    assert group_label("") == UNLABELED


# ----------------------------------------------------------------------
# Simulator(profile=True)
# ----------------------------------------------------------------------
def test_profiled_run_reports_groups_and_heap():
    sim = Simulator(profile=True)
    for i in range(5):
        sim.schedule(float(i), lambda: None, label=f"tick {i}")
    sim.schedule(2.5, lambda: None)  # unlabeled
    sim.run(until=10.0)
    stats = sim.stats
    assert stats.profiled is True
    assert stats.dispatched_events == 6
    tick = stats.group("tick")
    assert tick is not None and tick.events == 5
    assert tick.wall_time >= 0.0
    assert stats.group(UNLABELED).events == 1
    assert stats.heap_high_water >= 1


def test_unprofiled_stats_still_count_dispatches():
    sim = Simulator()
    sim.schedule(1.0, lambda: None, label="tick 1")
    sim.run(until=2.0)
    stats = sim.stats
    assert stats.profiled is False
    assert stats.dispatched_events == 1
    assert stats.heap_high_water is None
    assert stats.groups == ()
    assert "profiling disabled" in stats.report()


def test_profiling_does_not_change_the_simulation():
    plain = make_flow("tcp-pr", seed=9)
    plain.run(until=5.0)
    profiled = make_flow("tcp-pr", seed=9)
    profiled.network.sim._profile = SimProfile()  # engine reads it per-run
    profiled.run(until=5.0)
    assert profiled.delivered == plain.delivered
    assert (
        profiled.network.sim.dispatched_events == plain.network.sim.dispatched_events
    )
    stats = profiled.network.sim.stats
    assert sum(g.events for g in stats.groups) == stats.dispatched_events


# ----------------------------------------------------------------------
# build_stats / report shape
# ----------------------------------------------------------------------
def test_build_stats_sorts_groups_by_wall_time():
    profile = SimProfile()
    profile.record("cheap thing", 0.001)
    profile.record("hot thing", 0.5)
    profile.record("hot thing", 0.5)
    stats = build_stats(3, 0, profile)
    assert [g.group for g in stats.groups] == ["hot thing", "cheap thing"]
    assert stats.groups[0].events == 2
    assert stats.groups[0].wall_time == pytest.approx(1.0)


def test_to_record_shapes():
    profile = SimProfile()
    profile.record("tick 1", 0.0)
    profiled = build_stats(1, 0, profile).to_record()
    assert profiled["record"] == "sim"
    assert profiled["groups"] == [{"group": "tick", "events": 1, "wall_time": 0.0}]
    bare = build_stats(1, 0, None).to_record()
    assert bare["profiled"] is False
    assert "groups" not in bare


def test_report_is_wall_time_table():
    profile = SimProfile()
    profile.record("tick 1", 0.25)
    text = build_stats(1, 2, profile).report()
    assert "dispatched=1 pending=2" in text
    assert "tick" in text and "250.00" in text

"""Unit tests for link timing, queueing, and drop accounting."""

import pytest

from repro.net.lossgen import BernoulliLoss, DeterministicLoss
from repro.net.network import Network
from repro.net.packet import Packet
from repro.sim.errors import SimulationError


class Sink:
    def __init__(self):
        self.arrivals = []

    def receive(self, packet):
        self.arrivals.append(packet)


def _two_node_net(bandwidth=1e6, delay=0.1, queue=10, loss_model=None):
    net = Network(seed=0)
    net.add_nodes("a", "b")
    link = net.add_link("a", "b", bandwidth=bandwidth, delay=delay,
                        queue=queue, loss_model=loss_model)
    sink = Sink()
    net.node("b").agents[1] = sink
    return net, link, sink


def test_serialization_plus_propagation_delay():
    # 1000 B at 1 Mbps = 8 ms serialization; +100 ms propagation.
    net, link, sink = _two_node_net()
    times = []
    original = sink.receive
    sink.receive = lambda p: times.append(net.sim.now) or original(p)
    packet = Packet("data", "a", "b", flow_id=1, seq=0)
    net.sim.schedule(0.0, lambda: link.enqueue(packet))
    net.run(until=1.0)
    assert times == [pytest.approx(0.108)]


def test_back_to_back_packets_are_serialized():
    net, link, sink = _two_node_net()
    times = []
    original = sink.receive
    sink.receive = lambda p: times.append(net.sim.now) or original(p)

    def send_two():
        link.enqueue(Packet("data", "a", "b", flow_id=1, seq=0))
        link.enqueue(Packet("data", "a", "b", flow_id=1, seq=1))

    net.sim.schedule(0.0, send_two)
    net.run(until=1.0)
    assert times[0] == pytest.approx(0.108)
    assert times[1] == pytest.approx(0.116)  # one extra serialization time


def test_fifo_delivery_order():
    net, link, sink = _two_node_net()

    def send_many():
        for i in range(8):
            link.enqueue(Packet("data", "a", "b", flow_id=1, seq=i))

    net.sim.schedule(0.0, send_many)
    net.run(until=2.0)
    assert [p.seq for p in sink.arrivals] == list(range(8))


def test_queue_overflow_drops_tail():
    # Queue of 2 plus 1 in transmission = 3 accepted out of 5.
    net, link, sink = _two_node_net(queue=2)

    def send_many():
        for i in range(5):
            link.enqueue(Packet("data", "a", "b", flow_id=1, seq=i))

    net.sim.schedule(0.0, send_many)
    net.run(until=2.0)
    assert [p.seq for p in sink.arrivals] == [0, 1, 2]
    assert link.queue.drops == 2
    assert link.total_drops == 2


def test_loss_model_drops_before_queueing():
    model = DeterministicLoss([1])
    net, link, sink = _two_node_net(loss_model=model)

    def send_many():
        for i in range(3):
            link.enqueue(Packet("data", "a", "b", flow_id=1, seq=i))

    net.sim.schedule(0.0, send_many)
    net.run(until=2.0)
    assert [p.seq for p in sink.arrivals] == [0, 2]
    assert link.loss_model_drops == 1
    assert link.queue.drops == 0


def test_drop_listener_notified():
    net, link, sink = _two_node_net(queue=1)
    dropped = []
    link.drop_listeners.append(lambda lk, p: dropped.append(p.seq))

    def send_many():
        for i in range(4):
            link.enqueue(Packet("data", "a", "b", flow_id=1, seq=i))

    net.sim.schedule(0.0, send_many)
    net.run(until=2.0)
    assert dropped == [2, 3]


def test_stats_counters():
    net, link, sink = _two_node_net()

    def send_two():
        link.enqueue(Packet("data", "a", "b", flow_id=1, seq=0))
        link.enqueue(Packet("data", "a", "b", flow_id=1, seq=1))

    net.sim.schedule(0.0, send_two)
    net.run(until=2.0)
    assert link.tx_packets == 2
    assert link.tx_bytes == 2000
    assert link.arrived_packets == 2


def test_invalid_parameters_rejected():
    net = Network()
    net.add_nodes("a", "b")
    with pytest.raises(ValueError):
        net.add_link("a", "b", bandwidth=0, delay=0.1)
    with pytest.raises(ValueError):
        net.add_link("a", "b", bandwidth=1e6, delay=-1)


def test_hop_counter_increments():
    net, link, sink = _two_node_net()
    packet = Packet("data", "a", "b", flow_id=1, seq=0)
    net.sim.schedule(0.0, lambda: link.enqueue(packet))
    net.run(until=1.0)
    assert sink.arrivals[0].hops == 1


def test_duplicate_link_rejected():
    net = Network()
    net.add_nodes("a", "b")
    net.add_link("a", "b", bandwidth=1e6, delay=0.1)
    with pytest.raises(SimulationError):
        net.add_link("a", "b", bandwidth=1e6, delay=0.1)

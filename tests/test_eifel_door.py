"""Behavioural tests for the Eifel and TCP-DOOR extension variants."""

from repro.net.lossgen import DeterministicLoss
from repro.tcp.base import TcpConfig

from conftest import make_flow
from test_tdfr import make_reordering_tcp_flow


# ----------------------------------------------------------------------
# Eifel
# ----------------------------------------------------------------------
def test_eifel_forces_timestamps_on():
    flow = make_flow("eifel")
    assert flow.sender.config.timestamps is True


def test_eifel_real_loss_like_newreno():
    flow = make_flow("eifel", data_loss=DeterministicLoss([40]))
    flow.run(until=10.0)
    stats = flow.sender.stats
    assert stats.fast_retransmits == 1
    assert stats.extra["eifel_undos"] == 0  # a real loss is not spurious
    assert flow.delivered > 800


def test_eifel_undoes_spurious_response_under_reordering():
    net, sender, receiver = make_reordering_tcp_flow("eifel")
    net.run(until=10.0)
    assert sender.stats.fast_retransmits > 0
    assert sender.stats.extra["eifel_undos"] > 0


def test_eifel_beats_plain_newreno_under_reordering():
    net, _, eifel_rcv = make_reordering_tcp_flow("eifel")
    net.run(until=10.0)
    net2, _, newreno_rcv = make_reordering_tcp_flow("newreno")
    net2.run(until=10.0)
    assert eifel_rcv.delivered > newreno_rcv.delivered


def test_eifel_data_timestamps_echoed():
    flow = make_flow("eifel", tcp_config=TcpConfig(total_segments=5))
    flow.run(until=5.0)
    # The flow completed, which requires ACK processing with echoes.
    assert flow.delivered == 5


# ----------------------------------------------------------------------
# TCP-DOOR
# ----------------------------------------------------------------------
def test_door_no_reordering_behaves_like_newreno():
    door = make_flow("door", tcp_config=TcpConfig(initial_ssthresh=16))
    door.run(until=5.0)
    newreno = make_flow("newreno", tcp_config=TcpConfig(initial_ssthresh=16))
    newreno.run(until=5.0)
    assert abs(door.delivered - newreno.delivered) <= 5
    assert door.sender.stats.extra["ooo_events"] == 0


def test_door_detects_out_of_order_acks():
    net, sender, receiver = make_reordering_tcp_flow("door")
    net.run(until=10.0)
    assert sender.stats.extra["ooo_events"] > 0


def test_door_disables_congestion_response_after_ooo():
    net, door_sender, door_rcv = make_reordering_tcp_flow("door")
    net.run(until=10.0)
    net2, newreno_sender, newreno_rcv = make_reordering_tcp_flow("newreno")
    net2.run(until=10.0)
    # DOOR suppresses some of the spurious halvings NewReno takes.
    assert door_sender.stats.recoveries_entered <= newreno_sender.stats.recoveries_entered
    assert door_rcv.delivered >= newreno_rcv.delivered


def test_door_real_loss_still_recovers():
    flow = make_flow("door", data_loss=DeterministicLoss([40]))
    flow.run(until=10.0)
    assert flow.delivered > 800
    assert flow.sender.stats.retransmits >= 1

"""Unit tests for the SACK scoreboard."""

from hypothesis import given, strategies as st

from repro.tcp.scoreboard import Scoreboard


def test_record_and_query():
    sb = Scoreboard()
    assert sb.record_blocks([(3, 5)], snd_una=0) == 2
    assert sb.is_sacked(3) and sb.is_sacked(4)
    assert not sb.is_sacked(5)
    assert sb.sacked_count() == 2


def test_record_ignores_below_snd_una():
    sb = Scoreboard()
    assert sb.record_blocks([(0, 5)], snd_una=3) == 2
    assert not sb.is_sacked(2)
    assert sb.is_sacked(3)


def test_record_deduplicates():
    sb = Scoreboard()
    sb.record_blocks([(3, 5)], snd_una=0)
    assert sb.record_blocks([(3, 5)], snd_una=0) == 0


def test_record_none_and_empty():
    sb = Scoreboard()
    assert sb.record_blocks(None, 0) == 0
    assert sb.record_blocks([], 0) == 0


def test_advance_forgets_old_state():
    sb = Scoreboard()
    sb.record_blocks([(2, 6)], snd_una=0)
    sb.mark_retransmitted(1)
    sb.advance(4)
    assert not sb.is_sacked(2)
    assert sb.is_sacked(4)
    assert not sb.was_retransmitted(1)


def test_sacked_above():
    sb = Scoreboard()
    sb.record_blocks([(5, 8)], snd_una=0)
    assert sb.sacked_above(0) == 3
    assert sb.sacked_above(5) == 2
    assert sb.sacked_above(7) == 0


def test_is_lost_requires_dupthresh_above():
    sb = Scoreboard()
    sb.record_blocks([(5, 8)], snd_una=0)
    assert sb.is_lost(0, dupthresh=3)
    assert not sb.is_lost(5, dupthresh=3)  # SACKed itself
    assert not sb.is_lost(6, dupthresh=3)  # only 1 above... sacked anyway
    assert not sb.is_lost(8, dupthresh=3)
    assert sb.is_lost(4, dupthresh=3)
    assert not sb.is_lost(4, dupthresh=4)


def test_next_lost_to_retransmit_skips_retransmitted():
    sb = Scoreboard()
    sb.record_blocks([(5, 9)], snd_una=0)
    assert sb.next_lost_to_retransmit(0, 20, 3) == 0
    sb.mark_retransmitted(0)
    assert sb.next_lost_to_retransmit(0, 20, 3) == 1
    # Scanning from above works too.
    assert sb.next_lost_to_retransmit(3, 20, 3) == 3


def test_next_lost_none_without_sacks():
    sb = Scoreboard()
    assert sb.next_lost_to_retransmit(0, 10, 3) is None


def test_pipe_accounting():
    sb = Scoreboard()
    # Window [0, 10); SACKed 5-9 => 0..4 lost (5 sacked above each).
    sb.record_blocks([(5, 10)], snd_una=0)
    # pipe: segments 0-4 are lost & unretransmitted (0), 5-9 sacked (0).
    assert sb.pipe(0, 10, dupthresh=3) == 0
    sb.mark_retransmitted(0)
    assert sb.pipe(0, 10, dupthresh=3) == 1
    sb.mark_retransmitted(1)
    assert sb.pipe(0, 10, dupthresh=3) == 2


def test_pipe_counts_presumed_inflight():
    sb = Scoreboard()
    sb.record_blocks([(8, 9)], snd_una=0)  # only one sacked: nothing lost
    # All of 0..7 presumed in flight; 8 sacked; 9 in flight.
    assert sb.pipe(0, 10, dupthresh=3) == 9


def test_clear_and_reset():
    sb = Scoreboard()
    sb.record_blocks([(1, 3)], 0)
    sb.mark_retransmitted(0)
    sb.clear_retransmitted()
    assert not sb.was_retransmitted(0)
    assert sb.is_sacked(1)
    sb.reset()
    assert sb.sacked_count() == 0


@given(
    st.lists(
        st.tuples(st.integers(0, 30), st.integers(1, 6)), min_size=1, max_size=20
    )
)
def test_property_pipe_bounded_by_window(blocks):
    sb = Scoreboard()
    sack_blocks = [(start, start + length) for start, length in blocks]
    sb.record_blocks(sack_blocks, snd_una=0)
    window = 40
    pipe = sb.pipe(0, window, dupthresh=3)
    assert 0 <= pipe <= window


@given(st.sets(st.integers(0, 40), max_size=30))
def test_property_sacked_above_consistent(sacked):
    sb = Scoreboard()
    sb.record_blocks([(s, s + 1) for s in sacked], snd_una=0)
    for probe in range(42):
        assert sb.sacked_above(probe) == sum(1 for s in sacked if s > probe)

"""Tests for the on-disk result cache (repro.exec.cache)."""

import json

import pytest

from repro.exec.cache import CACHE_SCHEMA_VERSION, ResultCache
from repro.exec.spec import SweepCell
from repro.experiments.runner import FairnessResult
from repro.experiments.serialize import (
    decode_result,
    encode_result,
    registered_result_types,
    revive_floats,
)


def _cell(seed=0, **extra_params):
    params = {"alpha": 0.995, "beta": 3.0, "duration": 6.0}
    params.update(extra_params)
    return SweepCell(key=(0.995, 3.0), func="pkg.mod:cell", params=params, seed=seed)


def _fairness_result(**overrides):
    fields = dict(
        topology="dumbbell",
        total_flows=2,
        duration=6.0,
        measure_window=4.0,
        throughputs={"tcp-pr": [1e6], "sack": [2e6]},
        normalized={"tcp-pr": [0.666], "sack": [1.333]},
        mean_normalized={"tcp-pr": 0.666, "sack": 1.333},
        cov={"tcp-pr": 0.0, "sack": 0.0},
        loss_rate=0.0125,
    )
    fields.update(overrides)
    return FairnessResult(**fields)


# ----------------------------------------------------------------------
# Typed serialization round trip
# ----------------------------------------------------------------------
def test_fairness_result_is_registered():
    assert registered_result_types()["FairnessResult"] is FairnessResult


def test_encode_decode_registered_dataclass():
    result = _fairness_result()
    blob = encode_result(result)
    assert blob["type"] == "FairnessResult"
    json.dumps(blob)  # fully JSON-able
    assert decode_result(blob) == result


def test_encode_decode_plain_values():
    for value in [3.25, {"a": [1, 2]}, None, "text", [1.5, 2.5]]:
        assert decode_result(json.loads(json.dumps(encode_result(value)))) == value


def test_infinities_survive_the_round_trip():
    result = _fairness_result(cov={"tcp-pr": float("inf"), "sack": 0.0})
    blob = json.loads(json.dumps(encode_result(result)))
    assert decode_result(blob) == result


def test_revive_floats_leaves_ordinary_strings_alone():
    assert revive_floats({"topology": "dumbbell"}) == {"topology": "dumbbell"}
    assert revive_floats(["inf", "-inf", "fine"]) == [
        float("inf"),
        float("-inf"),
        "fine",
    ]


def test_decode_unregistered_type_raises():
    with pytest.raises(KeyError):
        decode_result({"type": "NoSuchResult", "data": {}})


# ----------------------------------------------------------------------
# Cache keys
# ----------------------------------------------------------------------
def test_key_is_deterministic(tmp_path):
    cache = ResultCache(tmp_path, version="1.0")
    assert cache.key_for(_cell()) == cache.key_for(_cell())


def test_key_changes_with_params_seed_func_and_version(tmp_path):
    cache = ResultCache(tmp_path, version="1.0")
    base = cache.key_for(_cell())
    assert cache.key_for(_cell(alpha=0.5)) != base
    assert cache.key_for(_cell(seed=1)) != base
    other_func = SweepCell(key=1, func="pkg.mod:other", params={}, seed=0)
    same_func = SweepCell(key=1, func="pkg.mod:other", params={}, seed=0)
    assert cache.key_for(other_func) == cache.key_for(same_func)
    assert cache.key_for(other_func) != base
    upgraded = ResultCache(tmp_path, version="2.0")
    assert upgraded.key_for(_cell()) != base


def test_key_defaults_to_package_version(tmp_path):
    import repro

    cache = ResultCache(tmp_path)
    assert cache.version == repro.__version__


# ----------------------------------------------------------------------
# Hit / miss / store
# ----------------------------------------------------------------------
def test_miss_then_store_then_hit(tmp_path):
    cache = ResultCache(tmp_path)
    cell = _cell()
    hit, value = cache.load(cell)
    assert not hit and value is None

    result = _fairness_result()
    path = cache.store(cell, result)
    assert path.exists()
    assert path.suffix == ".json"
    assert path.parent.parent == tmp_path

    hit, value = cache.load(cell)
    assert hit
    assert value == result
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.stores == 1
    assert cache.stats.errors == 0


def test_store_leaves_no_temp_files(tmp_path):
    cache = ResultCache(tmp_path)
    cache.store(_cell(), 1.5)
    leftovers = list(tmp_path.rglob("*.tmp"))
    assert leftovers == []


def test_spec_change_misses(tmp_path):
    cache = ResultCache(tmp_path)
    cache.store(_cell(), 1.0)
    hit, _ = cache.load(_cell(duration=12.0))
    assert not hit


# ----------------------------------------------------------------------
# Corruption recovery
# ----------------------------------------------------------------------
def test_corrupted_entry_recovers_as_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cell = _cell()
    path = cache.store(cell, _fairness_result())
    path.write_text("{ this is not json")

    hit, value = cache.load(cell)
    assert not hit and value is None
    assert cache.stats.errors == 1
    assert not path.exists(), "corrupted entry must be deleted"

    # The heal cycle: re-store and the hit works again.
    cache.store(cell, _fairness_result())
    hit, value = cache.load(cell)
    assert hit and value == _fairness_result()


def test_entry_with_unknown_result_type_recovers_as_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cell = _cell()
    path = cache.store(cell, 1.0)
    blob = json.loads(path.read_text())
    blob["result"]["type"] = "VanishedResultClass"
    path.write_text(json.dumps(blob))

    hit, _ = cache.load(cell)
    assert not hit
    assert cache.stats.errors == 1


def test_entry_missing_result_field_recovers_as_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cell = _cell()
    path = cache.store(cell, 1.0)
    path.write_text(json.dumps({"schema": CACHE_SCHEMA_VERSION}))

    hit, _ = cache.load(cell)
    assert not hit
    assert cache.stats.errors == 1

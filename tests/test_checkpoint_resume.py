"""Golden resume tests: a continued run is *bit-identical* to an
uninterrupted one.

The scenarios are real Figure 6 cells (multipath mesh, ε-routing, the
paper's protocols), not toys: persistent reordering keeps hundreds of
events and SACK runs in flight, so any state a snapshot misses shows up
as diverging traces within milliseconds of simulated time.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.app.bulk import BulkTransfer
from repro.checkpoint import (
    CellPlan,
    cell_plan,
    checkpointable,
    inspect_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.core import engine_select
from repro.core.pr import PrConfig
from repro.experiments.fig6_multipath import (
    DEFAULT_INITIAL_SSTHRESH,
    run_single_multipath_flow,
)
from repro.net import packet as packet_mod
from repro.obs.instrument import Instrumentation, ambient, maybe_observe
from repro.sim.engine import Simulator
from repro.sim.errors import InvariantViolation
from repro.tcp.base import TcpConfig
from repro.topologies.multipath_mesh import (
    MultipathMeshSpec,
    build_multipath_mesh,
    install_epsilon_routing,
)
from repro.util.units import MS

#: Three figure cells spanning the interesting regimes: TCP-PR under
#: moderate reordering, TD-FR under the worst-case ε=0, and a
#: DUPACK-based baseline on the single-path ε=500 edge.
CELLS = [("tcp-pr", 4.0), ("tdfr", 0.0), ("dsack-nm", 500.0)]

DURATION = 6.0
CUT = 3.0
SEED = 7


def _build_cell(variant, epsilon, seed=SEED):
    """The exact scenario of one Figure 6 cell (mirrors fig6_multipath)."""
    net = build_multipath_mesh(MultipathMeshSpec(link_delay=10 * MS, seed=seed))
    install_epsilon_routing(net, epsilon, reorder_acks=True)
    flow = BulkTransfer(
        net,
        variant,
        "src",
        "dst",
        flow_id=1,
        tcp_config=TcpConfig(initial_ssthresh=DEFAULT_INITIAL_SSTHRESH),
        pr_config=PrConfig(initial_ssthresh=DEFAULT_INITIAL_SSTHRESH),
    )
    return net, flow


def _run_uninterrupted(variant, epsilon):
    packet_mod.reset_uid_counter(0)
    inst = Instrumentation(trace=True)
    with ambient(inst):
        net, flow = _build_cell(variant, epsilon)
        maybe_observe(net)
        net.run(until=DURATION)
    return flow.receiver.delivered, inst.to_records()


def _save_partial(variant, epsilon, path):
    """Run a cell to CUT and checkpoint it (obs and flow ride the graph)."""
    packet_mod.reset_uid_counter(0)
    inst = Instrumentation(trace=True)
    with ambient(inst):
        net, flow = _build_cell(variant, epsilon)
        maybe_observe(net)
        net.sim.register_component("obs", inst)
        net.sim.register_component("flow", flow)
        net.run(until=CUT)
        save_checkpoint(net.sim, path)


@pytest.mark.parametrize("variant,epsilon", CELLS)
def test_resume_is_bit_identical(tmp_path, variant, epsilon):
    delivered, records = _run_uninterrupted(variant, epsilon)
    assert delivered > 0 and records

    path = tmp_path / "cell.ckpt"
    _save_partial(variant, epsilon, path)
    # Simulate process death: globals clobbered, every object gone.
    packet_mod.reset_uid_counter(987654321)

    sim = Simulator.resume(path)
    assert sim.now == CUT
    sim.run(until=DURATION)
    flow = sim.component("flow")
    restored_inst = sim.component("obs")
    assert flow.receiver.delivered == delivered
    assert restored_inst.to_records() == records


def test_resume_across_processes(tmp_path):
    variant, epsilon = CELLS[0]
    delivered, records = _run_uninterrupted(variant, epsilon)
    path = tmp_path / "cell.ckpt"
    _save_partial(variant, epsilon, path)

    script = (
        "import json, sys\n"
        "from repro.sim.engine import Simulator\n"
        "sim = Simulator.resume(sys.argv[1])\n"
        f"sim.run(until={DURATION!r})\n"
        "print(json.dumps({'delivered': sim.component('flow').receiver.delivered,"
        " 'records': sim.component('obs').to_records()}))\n"
    )
    src_dir = str(Path(__file__).resolve().parent.parent / "src")
    env = dict(os.environ, PYTHONPATH=src_dir)
    out = subprocess.run(
        [sys.executable, "-c", script, str(path)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    result = json.loads(out.stdout)
    assert result["delivered"] == delivered
    assert result["records"] == json.loads(json.dumps(records))


def test_checkpoint_every_does_not_perturb(tmp_path):
    variant, epsilon = CELLS[0]
    delivered, records = _run_uninterrupted(variant, epsilon)

    packet_mod.reset_uid_counter(0)
    inst = Instrumentation(trace=True)
    path = tmp_path / "periodic.ckpt"
    with ambient(inst):
        net, flow = _build_cell(variant, epsilon)
        maybe_observe(net)
        net.run(until=DURATION, checkpoint_every=1.5, checkpoint_path=path)
    assert flow.receiver.delivered == delivered
    assert inst.to_records() == records
    assert path.exists()  # the last boundary snapshot remains on disk


# ----------------------------------------------------------------------
# Cross-build portability (docs/COMPILED.md): a checkpoint written by
# either engine build must load on either build and continue to the
# same bit-identical result.
# ----------------------------------------------------------------------
_ENGINES = [
    "pure",
    pytest.param(
        "compiled",
        marks=pytest.mark.skipif(
            not engine_select.compiled_available(),
            reason="compiled extension not built "
            f"(`{engine_select.BUILD_HINT}`)",
        ),
    ),
]


@pytest.mark.parametrize("save_engine", _ENGINES)
@pytest.mark.parametrize("load_engine", _ENGINES)
def test_checkpoint_round_trips_across_builds(
    tmp_path, save_engine, load_engine
):
    variant, epsilon = CELLS[0]
    delivered, records = _run_uninterrupted(variant, epsilon)

    path = tmp_path / "cell.ckpt"
    with engine_select.use_engine(save_engine):
        _save_partial(variant, epsilon, path)
    # The header records the producing build (provenance only).
    assert inspect_checkpoint(path)["meta"]["engine"] == save_engine

    packet_mod.reset_uid_counter(987654321)
    with engine_select.use_engine(load_engine):
        sim = Simulator.resume(path)
        if load_engine == "pure":
            assert type(sim) is Simulator
        else:
            assert type(sim) is not Simulator
        assert sim.now == CUT
        sim.run(until=DURATION)
    assert sim.component("flow").receiver.delivered == delivered
    assert sim.component("obs").to_records() == records


@pytest.mark.parametrize("engine_mode", _ENGINES[1:])
def test_checkpoint_every_round_trips_on_compiled(tmp_path, engine_mode):
    """``run(checkpoint_every=...)`` must snapshot the compiled engine
    mid-run without perturbing it (the compiled run() delegates to the
    checkpointed driver, which snapshots at event boundaries)."""
    variant, epsilon = CELLS[0]
    delivered, records = _run_uninterrupted(variant, epsilon)

    packet_mod.reset_uid_counter(0)
    inst = Instrumentation(trace=True)
    path = tmp_path / "periodic.ckpt"
    with engine_select.use_engine(engine_mode):
        with ambient(inst):
            net, flow = _build_cell(variant, epsilon)
            maybe_observe(net)
            net.run(until=DURATION, checkpoint_every=1.5, checkpoint_path=path)
    assert flow.receiver.delivered == delivered
    assert inst.to_records() == records
    assert path.exists()
    assert inspect_checkpoint(path)["meta"]["engine"] == engine_mode
    # The boundary snapshot is itself resumable — on either build.
    packet_mod.reset_uid_counter(424242)
    resumed = Simulator.resume(path)
    resumed.run(until=DURATION)
    assert resumed.now == DURATION


# ----------------------------------------------------------------------
# Cell-function-level resume (the executor's view)
# ----------------------------------------------------------------------
class _SimulatedCrash(RuntimeError):
    pass


def test_cell_function_resumes_from_checkpoint(tmp_path):
    variant, epsilon = CELLS[0]
    packet_mod.reset_uid_counter(0)
    baseline = run_single_multipath_flow(
        variant, epsilon, duration=DURATION, seed=SEED
    )

    plan = CellPlan(tmp_path / "cell.ckpt", every=1.0)

    def build():
        net, flow = _build_cell(variant, epsilon)
        maybe_observe(net)
        return {"net": net, "flow": flow}

    packet_mod.reset_uid_counter(0)
    with cell_plan(plan):
        with pytest.raises(_SimulatedCrash):
            with checkpointable(build) as scope:
                assert not scope.resumed
                scope.run(until=CUT)
                raise _SimulatedCrash("process dies mid-cell")
    assert plan.path.exists()  # crash leaves the snapshot for the retry

    packet_mod.reset_uid_counter(424242)  # a "new process" starts dirty
    with cell_plan(plan):
        resumed = run_single_multipath_flow(
            variant, epsilon, duration=DURATION, seed=SEED
        )
    assert resumed == baseline
    assert not plan.path.exists()  # clean completion retires the snapshot


def test_cell_function_unaffected_without_plan(tmp_path):
    variant, epsilon = CELLS[1]
    packet_mod.reset_uid_counter(0)
    first = run_single_multipath_flow(variant, epsilon, duration=2.0, seed=3)
    packet_mod.reset_uid_counter(0)
    second = run_single_multipath_flow(variant, epsilon, duration=2.0, seed=3)
    assert first == second


# ----------------------------------------------------------------------
# Sanitizer: resume audits the restored heap
# ----------------------------------------------------------------------
def _noop():
    pass


def test_sanitize_resume_rejects_stale_heap(tmp_path):
    path = tmp_path / "bad.ckpt"
    sim = Simulator(seed=0, sanitize=True)
    sim.post_in(1.0, _noop, None, "timer")
    # Corrupt the snapshot source: clock ahead of a live heap entry, the
    # signature of a mixed-up or hand-edited checkpoint.
    sim.now = 5.0
    save_checkpoint(sim, path)
    with pytest.raises(InvariantViolation):
        load_checkpoint(path).resume()


def test_unsanitized_resume_does_not_audit(tmp_path):
    path = tmp_path / "bad.ckpt"
    sim = Simulator(seed=0, sanitize=False)
    sim.post_in(1.0, _noop, None, "timer")
    sim.now = 5.0
    save_checkpoint(sim, path)
    load_checkpoint(path).resume()  # no audit requested, no raise

"""Integration tests: the paper's headline claims, at small scale.

These are miniature versions of the benchmark experiments with loose
qualitative assertions, so the core results are continuously guarded by
the fast test suite.
"""

import pytest

from repro.analysis.fairness import mean_normalized_throughput
from repro.app.bulk import BulkTransfer
from repro.core.pr import PrConfig
from repro.experiments.fig6_multipath import run_single_multipath_flow
from repro.experiments.runner import run_fairness
from repro.routing.flap import RouteFlapper
from repro.net.network import Network, install_static_routes
from repro.tcp.receiver import TcpReceiver
from repro.tcp.registry import make_sender


def test_headline_tcp_pr_beats_sack_under_full_multipath():
    """Figure 6 at ε=0: TCP-PR sustains multipath throughput while a
    DUPACK-based protocol collapses."""
    pr = run_single_multipath_flow("tcp-pr", epsilon=0.0, duration=10.0)
    sack = run_single_multipath_flow("sack", epsilon=0.0, duration=10.0)
    assert pr > 5 * sack
    assert pr > 12.0  # uses more than one 10 Mbps path


def test_protocols_equal_on_single_path():
    """Figure 6 at ε=500: timer-based and DUPACK-based detection tie."""
    pr = run_single_multipath_flow("tcp-pr", epsilon=500.0, duration=10.0)
    sack = run_single_multipath_flow("sack", epsilon=500.0, duration=10.0)
    assert pr == pytest.approx(sack, rel=0.2)


def test_tcp_pr_dominates_every_baseline_at_eps_zero():
    results = {}
    for variant in ("tcp-pr", "tdfr", "dsack-nm", "ewma"):
        results[variant] = run_single_multipath_flow(
            variant, epsilon=0.0, duration=10.0
        )
    assert results["tcp-pr"] == max(results.values())
    assert results["tcp-pr"] > 2 * results["dsack-nm"]


def test_fairness_with_sack_without_reordering():
    """Figure 2's claim at small scale: mean normalized throughput of
    both protocols within ~15% of 1."""
    result = run_fairness(
        topology="dumbbell", total_flows=8, duration=25.0, measure_window=15.0
    )
    assert result.mean_normalized["tcp-pr"] == pytest.approx(1.0, abs=0.15)
    assert result.mean_normalized["sack"] == pytest.approx(1.0, abs=0.15)


def test_route_flapping_scenario():
    """The MANET motivation: periodic route changes between paths of
    different RTTs reorder packets; TCP-PR keeps the pipe full."""

    def build(variant):
        net = Network(seed=9)
        net.add_nodes("s", "d")
        for k in range(2):
            mids = [f"p{k}m{i}" for i in range(k + 1)]
            for m in mids:
                net.add_node(m)
            chain = ["s", *mids, "d"]
            for u, v in zip(chain, chain[1:]):
                net.add_duplex_link(u, v, bandwidth=5e6, delay=0.02, queue=200)
        install_static_routes(net)
        RouteFlapper(net, "s", "d", period=0.25).install()
        sender = make_sender(variant, net.sim, net.node("s"), 1, "d")
        receiver = TcpReceiver(net.sim, net.node("d"), 1, "s")
        sender.start(0.0)
        net.run(until=15.0)
        return receiver.delivered

    pr = build("tcp-pr")
    sack = build("sack")
    assert pr > sack


def test_mixed_variants_share_one_bottleneck():
    """Several different variants coexist on one link without starving."""
    from repro.topologies.dumbbell import DumbbellSpec, build_dumbbell
    from repro.util.units import MBPS

    net = build_dumbbell(
        DumbbellSpec(num_pairs=1, bottleneck_bandwidth=8 * MBPS,
                     access_bandwidth=100 * MBPS, access_delay=1e-3, seed=4)
    )
    variants = ["tcp-pr", "sack", "newreno", "tdfr"]
    flows = [
        BulkTransfer(net, variant, "s0", "d0", flow_id=i + 1, start_at=0.2 * i)
        for i, variant in enumerate(variants)
    ]
    net.run(until=30.0)
    throughputs = {
        flow.variant: [flow.delivered_bytes() * 8 / 30] for flow in flows
    }
    means = mean_normalized_throughput(throughputs)
    for variant, value in means.items():
        assert 0.4 < value < 2.0, f"{variant} starved or hogged: {value}"


def test_ack_path_reordering_alone_harms_dupack_tcp_less():
    """Reordering only the ACK path (data path single): cumulative ACKs
    make even standard TCP fairly robust, and TCP-PR must not be worse."""
    pr = run_single_multipath_flow(
        "tcp-pr", epsilon=0.0, duration=8.0, reorder_acks=True
    )
    pr_data_only = run_single_multipath_flow(
        "tcp-pr", epsilon=0.0, duration=8.0, reorder_acks=False
    )
    # TCP-PR is insensitive to whether ACKs are also reordered.
    assert pr == pytest.approx(pr_data_only, rel=0.3)

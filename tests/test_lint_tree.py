"""Tier-1 static-analysis gates over the real source tree.

``test_tree_is_clean`` is the enforcement point for the lint catalog:
``python -m repro lint src/repro`` must exit 0, i.e. every violation in
the tree is either fixed or carries a reasoned suppression pragma.  The
mypy strict-core check runs only when mypy is importable (it is an
optional ``[dev]`` extra; CI always has it).
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_TREE = REPO_ROOT / "src" / "repro"


@pytest.mark.lint
def test_tree_is_clean():
    findings = lint_paths([str(SRC_TREE)])
    assert not findings, "lint findings in src/repro:\n" + "\n".join(
        finding.format() for finding in findings
    )


@pytest.mark.lint
def test_tree_is_deep_clean():
    # The whole-program passes (interprocedural taint REP11x, the
    # C-mirror / snapshot / obs-schema drift checks REP4xx) must also
    # hold over the real tree.  Runs through the default on-disk cache,
    # so a warm checkout re-verifies in milliseconds.
    from repro.lint import run_analysis

    result = run_analysis([str(SRC_TREE)], deep=True)
    assert not result.errors, result.errors
    assert not result.findings, "deep lint findings in src/repro:\n" + "\n".join(
        finding.format() for finding in result.findings
    )


@pytest.mark.lint
def test_cli_lint_exits_zero():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(SRC_TREE)],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 findings" in proc.stdout


@pytest.mark.lint
def test_cli_lint_flags_bad_file(tmp_path):
    bad = tmp_path / "repro" / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import random\nx = random.random()\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(tmp_path)],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    assert "REP101" in proc.stdout


@pytest.mark.lint
def test_mypy_strict_core():
    pytest.importorskip("mypy", reason="mypy is a [dev] extra; CI installs it")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini"],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr

"""Unit tests for DropTail and RED queues."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.net.packet import Packet
from repro.net.queues import (
    DropTailQueue,
    REDQueue,
    bandwidth_delay_product_packets,
    queue_from_spec,
)


def _packet(seq=0):
    return Packet("data", "a", "b", flow_id=1, seq=seq)


def test_droptail_accepts_until_capacity():
    queue = DropTailQueue(3)
    assert all(queue.push(_packet(i)) for i in range(3))
    assert not queue.push(_packet(3))
    assert queue.drops == 1
    assert queue.enqueued == 3
    assert len(queue) == 3


def test_droptail_fifo_order():
    queue = DropTailQueue(10)
    for i in range(5):
        queue.push(_packet(i))
    popped = [queue.pop().seq for _ in range(5)]
    assert popped == [0, 1, 2, 3, 4]
    assert queue.pop() is None


def test_droptail_capacity_frees_after_pop():
    queue = DropTailQueue(1)
    queue.push(_packet(0))
    assert not queue.push(_packet(1))
    queue.pop()
    assert queue.push(_packet(2))


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        DropTailQueue(0)


def test_max_occupancy_tracked():
    queue = DropTailQueue(10)
    for i in range(4):
        queue.push(_packet(i))
    queue.pop()
    queue.pop()
    assert queue.max_occupancy == 4
    assert queue.occupancy == 2


@given(st.lists(st.booleans(), min_size=1, max_size=100))
def test_property_droptail_occupancy_never_exceeds_capacity(operations):
    queue = DropTailQueue(5)
    for is_push in operations:
        if is_push:
            queue.push(_packet())
        else:
            queue.pop()
        assert 0 <= len(queue) <= 5


def test_queue_from_spec():
    assert isinstance(queue_from_spec(7), DropTailQueue)
    assert queue_from_spec(7).capacity == 7
    existing = DropTailQueue(3)
    assert queue_from_spec(existing) is existing
    with pytest.raises(TypeError):
        queue_from_spec("big")
    with pytest.raises(TypeError):
        queue_from_spec(True)


def test_bdp_helper():
    # 10 Mbps * 80 ms = 100 kB = 100 segments of 1000 B.
    assert bandwidth_delay_product_packets(10e6, 0.080, 1000) == 100
    assert bandwidth_delay_product_packets(1.0, 1e-9, 1000) == 1


# ----------------------------------------------------------------------
# RED
# ----------------------------------------------------------------------
def test_red_never_drops_when_empty_average():
    queue = REDQueue(100, rng=random.Random(1))  # lint: allow-module-random(fixed-seed fixture stream; the literal seed keeps the test deterministic)
    assert queue.push(_packet())


def test_red_hard_drop_at_capacity():
    queue = REDQueue(4, min_thresh=1, max_thresh=2, rng=random.Random(1))  # lint: allow-module-random(fixed-seed fixture stream; the literal seed keeps the test deterministic)
    for i in range(20):
        queue.push(_packet(i))
    assert len(queue) <= 4
    assert queue.drops > 0


def test_red_probabilistic_drops_between_thresholds():
    queue = REDQueue(1000, min_thresh=2, max_thresh=10, max_p=0.5,
                     weight=1.0, rng=random.Random(3))  # lint: allow-module-random(fixed-seed fixture stream; the literal seed keeps the test deterministic)
    dropped = 0
    for i in range(500):
        if not queue.push(_packet(i)):
            dropped += 1
    assert dropped > 0  # early drops happened well below capacity
    assert len(queue) < 1000


def test_red_requires_ordered_thresholds():
    with pytest.raises(ValueError):
        REDQueue(10, min_thresh=5, max_thresh=5)


def test_red_average_follows_occupancy():
    queue = REDQueue(100, weight=0.5, rng=random.Random(1))  # lint: allow-module-random(fixed-seed fixture stream; the literal seed keeps the test deterministic)
    for i in range(10):
        queue.push(_packet(i))
    assert queue.avg > 0

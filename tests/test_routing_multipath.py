"""Unit tests for the ε-multipath routing family."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.net.network import Network, install_static_routes
from repro.net.packet import Packet
from repro.routing.multipath import (
    EpsilonMultipathPolicy,
    PathSet,
    discover_paths,
    epsilon_weights,
)
from repro.sim.errors import SimulationError


def _mesh(num_paths=3):
    """Disjoint paths with 1, 2, 3 intermediate hops."""
    net = Network(seed=5)
    net.add_nodes("s", "d")
    for k in range(num_paths):
        mids = [f"p{k}m{i}" for i in range(k + 1)]
        for m in mids:
            net.add_node(m)
        chain = ["s", *mids, "d"]
        for u, v in zip(chain, chain[1:]):
            net.add_duplex_link(u, v, bandwidth=1e7, delay=0.01, queue=500)
    install_static_routes(net)
    return net


# ----------------------------------------------------------------------
# PathSet / discovery
# ----------------------------------------------------------------------
def test_pathset_sorted_by_cost():
    ps = PathSet([["s", "b", "d"], ["s", "d"]], [0.03, 0.01])
    assert ps.paths[0] == ("s", "d")
    assert ps.costs == [0.01, 0.03]
    assert ps.min_cost == 0.01
    assert len(ps) == 2


def test_pathset_validates_inputs():
    with pytest.raises(ValueError):
        PathSet([], [])
    with pytest.raises(ValueError):
        PathSet([["a"]], [1.0, 2.0])


def test_discover_paths_finds_all_disjoint():
    net = _mesh(3)
    ps = discover_paths(net, "s", "d")
    assert len(ps) == 3
    assert ps.costs == pytest.approx([0.02, 0.03, 0.04])
    # Paths are node-disjoint in their interiors.
    interiors = [set(p[1:-1]) for p in ps.paths]
    for i in range(len(interiors)):
        for j in range(i + 1, len(interiors)):
            assert not interiors[i] & interiors[j]


def test_discover_paths_max_paths_cap():
    net = _mesh(3)
    ps = discover_paths(net, "s", "d", max_paths=2)
    assert len(ps) == 2
    assert ps.costs == pytest.approx([0.02, 0.03])


def test_discover_paths_no_route_raises():
    net = Network()
    net.add_nodes("s", "d")
    with pytest.raises(SimulationError):
        discover_paths(net, "s", "d")


# ----------------------------------------------------------------------
# epsilon weights
# ----------------------------------------------------------------------
def test_epsilon_zero_is_uniform():
    weights = epsilon_weights([1.0, 2.0, 3.0], 0.0)
    assert weights == pytest.approx([1 / 3, 1 / 3, 1 / 3])


def test_large_epsilon_concentrates_on_shortest():
    weights = epsilon_weights([1.0, 2.0, 3.0], 500.0)
    assert weights[0] == pytest.approx(1.0)
    assert weights[1] == pytest.approx(0.0, abs=1e-12)


def test_intermediate_epsilon_monotone_in_cost():
    weights = epsilon_weights([1.0, 2.0, 3.0], 2.0)
    assert weights[0] > weights[1] > weights[2] > 0


def test_negative_epsilon_rejected():
    with pytest.raises(ValueError):
        epsilon_weights([1.0], -1.0)


@given(
    st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=8),
    st.floats(min_value=0.0, max_value=100.0),
)
def test_property_weights_form_distribution(costs, epsilon):
    weights = epsilon_weights(costs, epsilon)
    assert len(weights) == len(costs)
    assert all(w >= 0 for w in weights)
    assert math.isclose(sum(weights), 1.0, rel_tol=1e-9)


@given(st.floats(min_value=0.0, max_value=50.0), st.floats(min_value=0.0, max_value=50.0))
def test_property_higher_epsilon_never_favors_longer_path(eps_low, eps_high):
    if eps_low > eps_high:
        eps_low, eps_high = eps_high, eps_low
    costs = [1.0, 1.5, 2.5]
    low = epsilon_weights(costs, eps_low)
    high = epsilon_weights(costs, eps_high)
    # Raising epsilon shifts mass toward the shortest path.
    assert high[0] >= low[0] - 1e-12


# ----------------------------------------------------------------------
# policy behaviour
# ----------------------------------------------------------------------
def test_policy_stamps_source_routes():
    net = _mesh(2)
    policy = EpsilonMultipathPolicy(net, "s", epsilon=0.0, destinations=["d"])
    packet = Packet("data", "s", "d", flow_id=1)
    route = policy.choose_route(packet)
    assert route is not None
    assert route[0] == "s" and route[-1] == "d"


def test_policy_ignores_unknown_destination():
    net = _mesh(2)
    policy = EpsilonMultipathPolicy(net, "s", epsilon=0.0, destinations=["d"])
    packet = Packet("data", "s", "elsewhere", flow_id=1)
    assert policy.choose_route(packet) is None


def test_policy_usage_matches_weights():
    net = _mesh(2)
    policy = EpsilonMultipathPolicy(net, "s", epsilon=0.0, destinations=["d"])
    for i in range(2000):
        policy.choose_route(Packet("data", "s", "d", flow_id=1, seq=i))
    counts = policy.path_counts["d"]
    assert sum(counts) == 2000
    assert abs(counts[0] - counts[1]) < 200  # ~uniform at eps=0


def test_policy_install_attaches_to_node():
    net = _mesh(2)
    policy = EpsilonMultipathPolicy(net, "s", epsilon=1.0, destinations=["d"]).install()
    assert net.node("s").path_policy is policy


def test_policy_weights_exposed():
    net = _mesh(3)
    policy = EpsilonMultipathPolicy(net, "s", epsilon=500.0, destinations=["d"])
    weights = policy.weights_for("d")
    assert weights[0] == pytest.approx(1.0)


def test_end_to_end_reordering_happens():
    net = _mesh(2)
    EpsilonMultipathPolicy(net, "s", epsilon=0.0, destinations=["d"]).install()
    arrivals = []

    class Sink:
        def receive(self, packet):
            arrivals.append(packet.seq)

    net.node("d").agents[1] = Sink()

    def burst():
        for i in range(200):
            net.node("s").send(Packet("data", "s", "d", flow_id=1, seq=i))

    net.sim.schedule(0.0, burst)
    net.run(until=5.0)
    assert len(arrivals) == 200
    assert arrivals != sorted(arrivals), "multipath at eps=0 must reorder"

"""The ``repro.ckpt/v1`` container: framing, atomicity, corruption typing.

Every corruption mode must surface as a typed error *naming the failing
section* — "the link section rotted" and "the file is half-written" are
different operator situations, and resume tooling branches on them.
"""

import os

import pytest

from repro.checkpoint import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointFormatError,
    inspect_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.checkpoint.format import (
    MAGIC,
    list_sections,
    read_container,
    write_container,
)
from repro.sim.engine import Simulator


def _sections():
    return {
        "meta": b'{"hello": 1}',
        "blob": b"A" * 1000,
        "empty": b"",
        "binary": bytes(range(256)),
    }


# ----------------------------------------------------------------------
# Round trip + framing
# ----------------------------------------------------------------------
def test_container_round_trip(tmp_path):
    path = tmp_path / "x.ckpt"
    write_container(path, _sections())
    assert read_container(path) == _sections()
    assert sorted(list_sections(path)) == sorted(
        (name, len(payload)) for name, payload in _sections().items()
    )


def test_container_empty(tmp_path):
    path = tmp_path / "x.ckpt"
    write_container(path, {})
    assert read_container(path) == {}
    assert path.read_bytes() == MAGIC + b"@end\n"


def test_container_overwrites_atomically(tmp_path):
    path = tmp_path / "x.ckpt"
    write_container(path, {"a": b"old"})
    write_container(path, {"a": b"new"})
    assert read_container(path) == {"a": b"new"}
    # mkstemp temp files are renamed or unlinked, never left behind.
    assert [entry.name for entry in tmp_path.iterdir()] == ["x.ckpt"]


def test_container_rejects_bad_section_names(tmp_path):
    path = tmp_path / "x.ckpt"
    for name in ("", "has space", "has\nnewline", "end", "é"):
        with pytest.raises(ValueError):
            write_container(path, {name: b""})
    assert not path.exists()


# ----------------------------------------------------------------------
# Corruption modes
# ----------------------------------------------------------------------
def test_bad_magic_is_format_error(tmp_path):
    path = tmp_path / "x.ckpt"
    path.write_bytes(b"not a checkpoint at all\n")
    with pytest.raises(CheckpointFormatError):
        read_container(path)


def test_missing_end_marker_names_container(tmp_path):
    path = tmp_path / "x.ckpt"
    write_container(path, _sections())
    data = path.read_bytes()
    assert data.endswith(b"@end\n")
    path.write_bytes(data[: -len(b"@end\n")])
    with pytest.raises(CheckpointCorruptError) as info:
        read_container(path)
    assert info.value.section == "container"


def test_flipped_payload_byte_names_its_section(tmp_path):
    path = tmp_path / "x.ckpt"
    write_container(path, _sections())
    data = path.read_bytes()
    path.write_bytes(data.replace(b"A" * 1000, b"B" + b"A" * 999))
    with pytest.raises(CheckpointCorruptError) as info:
        read_container(path)
    assert info.value.section == "blob"
    assert "CRC" in info.value.detail


def test_truncated_payload_names_its_section(tmp_path):
    path = tmp_path / "x.ckpt"
    write_container(path, {"meta": b"mm", "tail": b"T" * 64})
    data = path.read_bytes()
    path.write_bytes(data[:-40])
    with pytest.raises(CheckpointCorruptError) as info:
        read_container(path)
    assert info.value.section == "tail"


def test_duplicate_section_rejected(tmp_path):
    path = tmp_path / "x.ckpt"
    body = b"@twin 2 %d\nhi\n" % __import__("zlib").crc32(b"hi")
    path.write_bytes(MAGIC + body + body + b"@end\n")
    with pytest.raises(CheckpointCorruptError) as info:
        read_container(path)
    assert info.value.section == "twin"
    assert "duplicate" in info.value.detail


def test_malformed_header_names_container(tmp_path):
    path = tmp_path / "x.ckpt"
    path.write_bytes(MAGIC + b"no-at-sign 3 1\nabc\n@end\n")
    with pytest.raises(CheckpointCorruptError) as info:
        read_container(path)
    assert info.value.section == "container"


# ----------------------------------------------------------------------
# Whole-checkpoint layer (save/load/inspect)
# ----------------------------------------------------------------------
def _tick():
    pass


def test_save_load_inspect_round_trip(tmp_path):
    path = tmp_path / "sim.ckpt"
    sim = Simulator(seed=7)
    sim.rng.stream("noise").random()
    sim.post_in(1.5, _tick, None, "tick")
    save_checkpoint(sim, path, user_meta={"cell": "fixture"})

    info = inspect_checkpoint(path)
    assert info["meta"]["now"] == 0.0
    assert info["meta"]["pending_events"] == 1
    assert info["meta"]["rng_streams"] == ["noise"]
    assert info["meta"]["user_meta"] == {"cell": "fixture"}
    assert set(info["sections"]) == {"meta", "globals", "rng", "graph"}

    restored = load_checkpoint(path).resume()
    assert restored.now == sim.now
    assert restored.pending_events == 1


def test_load_missing_section_is_corrupt(tmp_path):
    path = tmp_path / "sim.ckpt"
    save_checkpoint(Simulator(seed=1), path)
    sections = read_container(path)
    del sections["rng"]
    write_container(path, sections)
    with pytest.raises(CheckpointCorruptError) as info:
        load_checkpoint(path)
    assert info.value.section == "rng"


def test_load_unpicklable_graph_names_graph(tmp_path):
    path = tmp_path / "sim.ckpt"
    save_checkpoint(Simulator(seed=1), path)
    sections = read_container(path)
    sections["graph"] = b"\x80\x04 definitely not a pickle"
    write_container(path, sections)
    with pytest.raises(CheckpointCorruptError) as info:
        load_checkpoint(path)
    assert info.value.section == "graph"


def test_load_schema_mismatch_is_checkpoint_error(tmp_path):
    path = tmp_path / "sim.ckpt"
    save_checkpoint(Simulator(seed=1), path)
    sections = read_container(path)
    sections["meta"] = sections["meta"].replace(b'"schema": 1', b'"schema": 99')
    write_container(path, sections)
    with pytest.raises(CheckpointError):
        load_checkpoint(path)


def test_fsync_failure_is_tolerated(tmp_path, monkeypatch):
    # Directory fsync is best-effort durability, not correctness; an
    # EPERM there (containers, some network filesystems) must not fail
    # the write.
    real_open = os.open

    def deny_dir_open(path, flags, *args, **kwargs):
        if flags == os.O_RDONLY and os.path.isdir(path):
            raise OSError("no directory handles here")
        return real_open(path, flags, *args, **kwargs)

    monkeypatch.setattr(os, "open", deny_dir_open)
    path = tmp_path / "x.ckpt"
    write_container(path, {"a": b"payload"})
    assert read_container(path) == {"a": b"payload"}

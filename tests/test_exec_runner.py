"""Tests for the parallel sweep executor (repro.exec.runner).

The load-bearing property: for a fixed spec and seed, results are
bit-identical whether cells run serially, across a process pool, or out
of the cache.
"""

import pytest

from repro.exec.cache import ResultCache
from repro.exec.runner import ParallelRunner, run_sweep
from repro.exec.spec import SweepCell
from repro.experiments import fig6_multipath
from repro.experiments.fig2_fairness import run_fig2
from repro.experiments.fig4_params import Fig4Spec, run_fig4
from repro.experiments.fig6_multipath import Fig6Spec, run_fig6


def _tiny_fig6_spec(seed=0):
    return Fig6Spec(
        protocols=("tcp-pr",), epsilons=(0.0, 500.0), duration=2.0, seed=seed
    )


def _tiny_fig4_spec(seed=0):
    return Fig4Spec(
        alphas=(0.995,), betas=(1.0, 3.0), total_flows=4,
        duration=6.0, measure_window=4.0, seed=seed,
    )


# ----------------------------------------------------------------------
# Serial vs parallel determinism
# ----------------------------------------------------------------------
def test_fig6_parallel_is_bit_identical_to_serial():
    spec = _tiny_fig6_spec(seed=3)
    serial = run_sweep(spec, jobs=1)
    parallel = run_sweep(spec, jobs=2)
    assert serial == parallel


def test_fig4_parallel_is_bit_identical_to_serial():
    spec = _tiny_fig4_spec(seed=1)
    serial = run_fig4(spec, jobs=1)
    parallel = run_fig4(spec, jobs=4)
    assert serial.sack_surface == parallel.sack_surface
    assert serial.pr_surface == parallel.pr_surface


def test_seed_still_flows_through_parallel_runs():
    one = run_sweep(_tiny_fig6_spec(seed=1), jobs=2)
    two = run_sweep(_tiny_fig6_spec(seed=2), jobs=2)
    assert one != two


# ----------------------------------------------------------------------
# run_sweep / wrappers
# ----------------------------------------------------------------------
def test_run_sweep_seed_override():
    base = run_sweep(_tiny_fig6_spec(seed=7))
    overridden = run_sweep(_tiny_fig6_spec(seed=0), seed=7)
    assert base == overridden


def test_spec_form_is_the_only_calling_convention():
    """The legacy keyword/positional forms raise (see test_deprecations);
    the spec form runs and matches itself across invocations."""
    first = run_fig6(_tiny_fig6_spec())
    second = run_fig6(_tiny_fig6_spec())
    assert first == second


def test_run_fig2_spec_form():
    from repro.experiments.fig2_fairness import Fig2Spec

    result = run_fig2(
        Fig2Spec(
            topology="dumbbell",
            flow_counts=(2,),
            duration=4.0,
            measure_window=2.0,
        )
    )
    assert result.topology == "dumbbell"
    assert 2 in result.results


# ----------------------------------------------------------------------
# Cache integration
# ----------------------------------------------------------------------
def test_cache_hit_returns_identical_results(tmp_path):
    spec = _tiny_fig6_spec()
    cache = ResultCache(tmp_path)
    runner = ParallelRunner(jobs=1, cache=cache)

    cold = runner.run(spec)
    assert runner.last_stats.executed == 2
    assert runner.last_stats.cached == 0

    warm = runner.run(spec)
    assert runner.last_stats.executed == 0
    assert runner.last_stats.cached == 2
    assert warm == cold


def test_cache_serves_partial_grids(tmp_path):
    cache = ResultCache(tmp_path)
    small = Fig6Spec(protocols=("tcp-pr",), epsilons=(500.0,), duration=2.0)
    run_sweep(small, cache=cache)

    grown = Fig6Spec(protocols=("tcp-pr",), epsilons=(0.0, 500.0), duration=2.0)
    runner = ParallelRunner(jobs=1, cache=cache)
    result = runner.run(grown)
    assert runner.last_stats.cached == 1  # the eps=500 cell was reused
    assert runner.last_stats.executed == 1
    assert result == run_sweep(grown)  # cache reuse does not change values


def test_parallel_execution_populates_cache(tmp_path):
    spec = _tiny_fig6_spec()
    cache = ResultCache(tmp_path)
    parallel = run_sweep(spec, jobs=2, cache=cache)
    assert cache.stats.stores == 2

    runner = ParallelRunner(jobs=1, cache=cache)
    warm = runner.run(spec)
    assert runner.last_stats.cached == 2
    assert warm == parallel


def test_spec_change_invalidates(tmp_path):
    cache = ResultCache(tmp_path)
    run_sweep(_tiny_fig6_spec(seed=0), cache=cache)
    runner = ParallelRunner(cache=cache)
    runner.run(_tiny_fig6_spec(seed=5))
    assert runner.last_stats.cached == 0
    assert runner.last_stats.executed == 2


# ----------------------------------------------------------------------
# run_cells plumbing
# ----------------------------------------------------------------------
def test_run_cells_rejects_duplicate_keys():
    cell = SweepCell(key="dup", func=fig6_multipath.CELL_FUNC, params={}, seed=0)
    with pytest.raises(ValueError):
        ParallelRunner().run_cells([cell, cell])


def test_run_cells_returns_keyed_results():
    cells = [
        SweepCell(
            key=variant,
            func=fig6_multipath.CELL_FUNC,
            params={
                "protocol": variant,
                "epsilon": 500.0,
                "link_delay": 0.01,
                "duration": 2.0,
            },
            seed=0,
        )
        for variant in ("tcp-pr", "sack")
    ]
    values = ParallelRunner(jobs=2).run_cells(cells)
    assert set(values) == {"tcp-pr", "sack"}
    assert all(throughput > 1.0 for throughput in values.values())


def test_jobs_are_clamped_to_at_least_one():
    assert ParallelRunner(jobs=0).jobs == 1
    assert ParallelRunner(jobs=-3).jobs == 1

"""Tests for the TopologySpec protocol and the scale-out generators
(fat-tree, WAN mesh), plus the legacy builder wrappers."""

import pytest

from repro.topologies import (
    DumbbellSpec,
    FatTreeSpec,
    MultipathMeshSpec,
    ParkingLotSpec,
    Topology,
    TopologySpec,
    WanMeshSpec,
    build_dumbbell,
    build_multipath_mesh,
    build_parking_lot,
    topology_class,
    topology_from_jsonable,
    topology_kinds,
    topology_to_jsonable,
    topology_with_seed,
)


# ----------------------------------------------------------------------
# The protocol and registry
# ----------------------------------------------------------------------
def test_all_kinds_registered():
    kinds = topology_kinds()
    for kind in ("dumbbell", "parking-lot", "multipath-mesh", "fat-tree",
                 "wan-mesh"):
        assert kind in kinds
    assert topology_class("fat-tree") is FatTreeSpec


def test_specs_satisfy_protocol():
    for spec in (DumbbellSpec(), ParkingLotSpec(), MultipathMeshSpec(),
                 FatTreeSpec(), WanMeshSpec()):
        assert isinstance(spec, TopologySpec)


@pytest.mark.parametrize(
    "spec",
    [
        DumbbellSpec(num_pairs=3, seed=5),
        ParkingLotSpec(seed=2),
        MultipathMeshSpec(num_paths=3, seed=1),
        FatTreeSpec(k=4, oversubscription=2.0, seed=9),
        WanMeshSpec(sites=5, degree=2.5, seed=4),
    ],
)
def test_topology_json_round_trip(spec):
    data = topology_to_jsonable(spec)
    assert data["kind"] == type(spec).kind
    assert topology_from_jsonable(data) == spec


def test_topology_from_jsonable_rejects_unknown_kind():
    with pytest.raises(ValueError):
        topology_from_jsonable({"kind": "moebius-strip"})


def test_topology_with_seed():
    spec = topology_with_seed(FatTreeSpec(seed=0), 77)
    assert isinstance(spec, FatTreeSpec)
    assert spec.seed == 77


def test_build_returns_topology_with_handles():
    built = DumbbellSpec(num_pairs=2).build()
    assert isinstance(built, Topology)
    assert built.kind == "dumbbell"
    assert built.senders == ("s0", "s1")
    assert built.receivers == ("d0", "d1")
    assert built.bottlenecks == ("r0->r1",)
    (link,) = built.bottleneck_links()
    assert link is built.network.link("r0", "r1")
    assert built.sim is built.network.sim


def test_endpoints_match_build():
    for spec in (DumbbellSpec(num_pairs=2), ParkingLotSpec(),
                 MultipathMeshSpec(), FatTreeSpec(), WanMeshSpec(sites=4)):
        senders, receivers = spec.endpoints()
        built = spec.build()
        assert tuple(built.senders) == tuple(senders)
        assert tuple(built.receivers) == tuple(receivers)
        for name in set(senders) | set(receivers):
            assert name in built.network.nodes


# ----------------------------------------------------------------------
# Fat-tree
# ----------------------------------------------------------------------
def test_fat_tree_structure_k4():
    spec = FatTreeSpec(k=4, hosts_per_edge=2)
    built = spec.build()
    net = built.network
    # (k/2)^2 cores + k pods x (k/2 agg + k/2 edge) + hosts.
    assert len(net.nodes) == 4 + 4 * (2 + 2) + 16
    assert spec.num_hosts() == 16
    assert len(built.senders) == 16
    # 16 host + 16 edge-agg + 16 agg-core simplex pairs, both directions.
    assert len(net.links) == 96


def test_fat_tree_routes_end_to_end():
    built = FatTreeSpec(k=4, hosts_per_edge=1).build()
    hosts = built.senders
    src, dst = hosts[0], hosts[-1]
    # Cross-pod route exists from the very first hop.
    assert dst in built.network.node(src).routes


def test_fat_tree_oversubscription_thins_uplinks():
    spec = FatTreeSpec(k=4, bandwidth=100e6, oversubscription=4.0)
    net = spec.build().network
    host_link = net.link("p0e0h0", "p0e0")
    uplink = net.link("p0a0", "c0")
    assert host_link.bandwidth == pytest.approx(100e6)
    assert uplink.bandwidth == pytest.approx(25e6)


def test_fat_tree_delay_jitter_deterministic_and_bounded():
    spec = FatTreeSpec(k=4, delay_jitter=0.5, seed=3)
    delays_a = [link.delay for link in spec.build().network.links.values()]
    delays_b = [link.delay for link in spec.build().network.links.values()]
    assert delays_a == delays_b
    base = max(spec.host_delay, spec.switch_delay)
    assert all(0 < delay <= base * 1.5 + 1e-12 for delay in delays_a)
    jittered = FatTreeSpec(k=4, delay_jitter=0.5, seed=4).build()
    assert [link.delay for link in jittered.network.links.values()] != delays_a


def test_fat_tree_validation():
    with pytest.raises(ValueError):
        FatTreeSpec(k=3).build()
    with pytest.raises(ValueError):
        FatTreeSpec(oversubscription=0.5).build()
    with pytest.raises(ValueError):
        FatTreeSpec(delay_jitter=1.0).build()


# ----------------------------------------------------------------------
# WAN mesh
# ----------------------------------------------------------------------
def test_wan_mesh_backbone_is_deterministic_per_seed():
    pairs_a = WanMeshSpec(sites=8, degree=3.0, seed=1).backbone_pairs()
    pairs_b = WanMeshSpec(sites=8, degree=3.0, seed=1).backbone_pairs()
    pairs_c = WanMeshSpec(sites=8, degree=3.0, seed=2).backbone_pairs()
    assert pairs_a == pairs_b
    assert pairs_a != pairs_c


def test_wan_mesh_ring_guarantees_connectivity():
    spec = WanMeshSpec(sites=6, degree=2.0, hosts_per_site=1, seed=0)
    pairs = set(spec.backbone_pairs())
    for i in range(6):
        assert tuple(sorted((i, (i + 1) % 6))) in pairs
    built = spec.build()
    # Static routes reach every host from every other.
    src, dst = built.senders[0], built.senders[-1]
    assert dst in built.network.node(src).routes


def test_wan_mesh_backbone_delays_within_range():
    spec = WanMeshSpec(sites=6, delay_min=0.005, delay_max=0.040, seed=7)
    net = spec.build().network
    for (a, b) in spec.backbone_pairs():
        delay = net.link(f"r{a}", f"r{b}").delay
        assert 0.005 <= delay <= 0.040


def test_wan_mesh_hostless_sites_expose_routers():
    spec = WanMeshSpec(sites=4, hosts_per_site=0)
    senders, receivers = spec.endpoints()
    assert senders == receivers == ("r0", "r1", "r2", "r3")


def test_wan_mesh_validation():
    with pytest.raises(ValueError):
        WanMeshSpec(sites=1).build()
    with pytest.raises(ValueError):
        WanMeshSpec(delay_min=0.05, delay_max=0.01).build()


# ----------------------------------------------------------------------
# The legacy builder wrappers stay functional
# ----------------------------------------------------------------------
def test_builder_wrappers_return_bare_networks():
    net = build_dumbbell(DumbbellSpec(num_pairs=1))
    assert "r0" in net.nodes
    net = build_parking_lot(ParkingLotSpec())
    assert "n1" in net.nodes
    net = build_multipath_mesh(MultipathMeshSpec())
    assert "src" in net.nodes

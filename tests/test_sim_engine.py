"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import ScheduleInPastError, SimulationError, Simulator


def test_initial_state():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.pending_events == 0
    assert sim.dispatched_events == 0


def test_schedule_and_run_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.5, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [1.5]
    assert sim.now == 1.5


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, lambda: order.append(3))
    sim.schedule(1.0, lambda: order.append(1))
    sim.schedule(2.0, lambda: order.append(2))
    sim.run()
    assert order == [1, 2, 3]


def test_fifo_among_equal_timestamps():
    sim = Simulator()
    order = []
    for i in range(5):
        sim.schedule(1.0, (lambda k: lambda: order.append(k))(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_schedule_in_relative_delay():
    sim = Simulator()
    times = []
    sim.schedule(1.0, lambda: sim.schedule_in(0.5, lambda: times.append(sim.now)))
    sim.run()
    assert times == [1.5]


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ScheduleInPastError):
        sim.schedule(0.5, lambda: None)
    with pytest.raises(ScheduleInPastError):
        sim.schedule_in(-0.1, lambda: None)


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(5.0, lambda: fired.append("b"))
    sim.run(until=2.0)
    assert fired == ["a"]
    assert sim.now == 2.0
    # The later event is still pending and fires on the next run.
    sim.run(until=10.0)
    assert fired == ["a", "b"]
    assert sim.now == 10.0


def test_run_until_boundary_event_fires():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append(sim.now))
    sim.run(until=2.0)
    assert fired == [2.0]


def test_cancellation():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append("x"))
    assert not handle.cancelled
    handle.cancel()
    assert handle.cancelled
    sim.run()
    assert fired == []
    assert sim.pending_events == 0


def test_cancel_twice_is_harmless():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_cancel_during_run():
    sim = Simulator()
    fired = []
    later = sim.schedule(2.0, lambda: fired.append("late"))
    sim.schedule(1.0, lambda: later.cancel())
    sim.run()
    assert fired == []


def test_step_dispatches_one_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(2.0, lambda: fired.append(2))
    assert sim.step() is True
    assert fired == [1]
    assert sim.step() is True
    assert fired == [1, 2]
    assert sim.step() is False


def test_max_events_budget():
    sim = Simulator()

    def reschedule():
        sim.schedule_in(1.0, reschedule)

    sim.schedule(0.0, reschedule)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, nested)
    sim.run()
    assert len(errors) == 1


def test_events_scheduled_during_dispatch_run():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule_in(1.0, lambda: chain(n + 1))

    sim.schedule(0.0, lambda: chain(0))
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_peek_time_skips_cancelled():
    sim = Simulator()
    first = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    first.cancel()
    assert sim.peek_time() == 2.0


def test_pending_events_counts_only_live():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    handle.cancel()
    assert sim.pending_events == 1


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_property_dispatch_order_is_sorted(times):
    sim = Simulator()
    fired = []
    for t in times:
        sim.schedule(t, (lambda when: lambda: fired.append(when))(t))
    sim.run()
    assert fired == sorted(times)
    assert len(fired) == len(times)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=100.0), st.booleans()),
        min_size=1,
        max_size=40,
    )
)
def test_property_cancelled_events_never_fire(entries):
    sim = Simulator()
    fired = []
    for t, keep in entries:
        handle = sim.schedule(t, (lambda when: lambda: fired.append(when))(t))
        if not keep:
            handle.cancel()
    sim.run()
    expected = sorted(t for t, keep in entries if keep)
    assert fired == expected

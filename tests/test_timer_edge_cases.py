"""Edge cases of the retransmission timer and send-window machinery."""

import pytest

from repro.net.lossgen import DeterministicLoss
from repro.tcp.base import TcpConfig

from conftest import make_flow


def test_timer_cancelled_when_everything_acked():
    flow = make_flow("sack", tcp_config=TcpConfig(total_segments=10))
    flow.run(until=5.0)
    assert flow.sender.done
    handle = flow.sender._timer_handle
    assert handle is None or handle.cancelled
    # No stray timeout fires afterwards.
    timeouts_before = flow.sender.stats.timeouts
    flow.run(until=15.0)
    assert flow.sender.stats.timeouts == timeouts_before


def test_no_timeout_while_acks_flow():
    flow = make_flow("sack")
    flow.run(until=10.0)
    assert flow.sender.stats.timeouts == 0


def test_backoff_resets_after_recovery():
    # Blackout long enough for two RTO rounds, then clean.
    flow = make_flow("sack", data_loss=DeterministicLoss(range(5, 12)))
    flow.run(until=30.0)
    assert flow.sender.stats.timeouts >= 1
    # After recovery, fresh RTT samples reset the backoff multiplier.
    assert flow.sender.rto.backoff == 1
    assert flow.delivered > 500


def test_zero_data_flow_never_times_out():
    flow = make_flow("sack", tcp_config=TcpConfig(total_segments=0))
    flow.run(until=5.0)
    assert flow.sender.stats.data_packets_sent == 0
    assert flow.sender.stats.timeouts == 0
    assert flow.sender.done


def test_single_segment_flow():
    flow = make_flow("tcp-pr")
    flow.sender.config.total_segments = 1
    flow.run(until=5.0)
    assert flow.delivered == 1
    assert flow.sender.done


def test_first_segment_lost_recovers_via_initial_rto():
    flow = make_flow(
        "sack",
        data_loss=DeterministicLoss([0]),
        tcp_config=TcpConfig(total_segments=20, initial_rto=1.0),
    )
    flow.run(until=15.0)
    assert flow.sender.stats.timeouts >= 1
    assert flow.delivered == 20


def test_tcp_pr_first_segment_lost_uses_initial_mxrtt():
    from repro.core.pr import PrConfig

    flow = make_flow(
        "tcp-pr",
        data_loss=DeterministicLoss([0]),
        pr_config=PrConfig(total_segments=20, initial_mxrtt=1.0),
    )
    flow.run(until=15.0)
    assert flow.sender.stats.drops_detected >= 1
    assert flow.sender.stats.backoff_doublings >= 1  # cwnd was 1
    assert flow.delivered == 20
    assert flow.sender.done

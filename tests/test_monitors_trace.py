"""Tests for monitors and packet tracing."""

import pytest

from repro.analysis.reordering import reordering_ratio
from repro.net.network import Network, install_static_routes
from repro.net.packet import Packet
from repro.sim import Simulator
from repro.obs import (
    CwndMonitor,
    FlowThroughputMonitor,
    PacketTracer,
    QueueMonitor,
)

from conftest import make_flow


# ----------------------------------------------------------------------
# FlowThroughputMonitor
# ----------------------------------------------------------------------
def test_flow_monitor_samples_periodically():
    flow = make_flow("sack")
    monitor = FlowThroughputMonitor(flow.network.sim, flow.receiver, interval=0.5)
    flow.run(until=5.0)
    assert len(monitor.samples) >= 9
    times = [s.time for s in monitor.samples]
    assert times == sorted(times)


def test_flow_monitor_goodput_window():
    from repro.tcp.base import TcpConfig

    flow = make_flow("sack", tcp_config=TcpConfig(initial_ssthresh=16))
    monitor = FlowThroughputMonitor(flow.network.sim, flow.receiver, interval=0.25)
    flow.run(until=10.0)
    goodput = monitor.last_window_goodput_bps(5.0)
    # 1 Mbps bottleneck: steady-state goodput close to line rate.
    assert 0.5e6 < goodput <= 1.05e6


def test_flow_monitor_sample_lookup():
    flow = make_flow("sack")
    monitor = FlowThroughputMonitor(flow.network.sim, flow.receiver, interval=1.0)
    flow.run(until=5.0)
    sample = monitor.sample_at_or_before(2.5)
    assert sample.time <= 2.5


def test_flow_monitor_validates_interval():
    flow = make_flow("sack")
    with pytest.raises(ValueError):
        FlowThroughputMonitor(flow.network.sim, flow.receiver, interval=0.0)


# ----------------------------------------------------------------------
# CwndMonitor / QueueMonitor
# ----------------------------------------------------------------------
def test_cwnd_monitor_tracks_growth():
    flow = make_flow("sack", bandwidth=1e8, delay=0.05)
    monitor = CwndMonitor(flow.network.sim, flow.sender, interval=0.05)
    flow.run(until=1.0)
    assert monitor.max_cwnd() > monitor.values[0]
    assert monitor.mean_cwnd() > 1.0


def test_queue_monitor_sees_occupancy():
    flow = make_flow("sack", bandwidth=1e6, delay=0.01, queue=50)
    link = flow.network.link("snd", "rcv")
    monitor = QueueMonitor(flow.network.sim, link.queue, interval=0.05)
    flow.run(until=5.0)
    assert monitor.max_occupancy() > 0
    assert 0 <= monitor.mean_occupancy() <= 50


# ----------------------------------------------------------------------
# PacketTracer
# ----------------------------------------------------------------------
def _traced_network():
    net = Network(seed=0)
    net.add_nodes("a", "b")
    net.add_duplex_link("a", "b", bandwidth=1e6, delay=0.01, queue=2)
    install_static_routes(net)
    tracer = PacketTracer()
    tracer.watch_node(net.node("b"))
    tracer.watch_link_drops(net.link("a", "b"))
    return net, tracer


def test_tracer_records_arrivals():
    net, tracer = _traced_network()

    class Sink:
        def receive(self, packet):
            pass

    net.node("b").agents[1] = Sink()

    def burst():
        for i in range(3):
            net.node("a").send(Packet("data", "a", "b", flow_id=1, seq=i))

    net.sim.schedule(0.0, burst)
    net.run(until=1.0)
    assert [e.seq for e in tracer.arrivals(flow_id=1)] == [0, 1, 2]
    assert tracer.arrival_seqs(1) == [0, 1, 2]


def test_tracer_records_drops():
    net, tracer = _traced_network()

    def burst():
        for i in range(10):
            net.node("a").send(Packet("data", "a", "b", flow_id=1, seq=i))

    net.sim.schedule(0.0, burst)
    net.run(until=1.0)
    assert len(tracer.drops()) == 7  # 1 transmitting + 2 queued survive


def test_tracer_with_real_flow_reordering_metric():
    """End-to-end: tracer + reordering_ratio on a single-path flow shows
    in-order delivery."""
    flow = make_flow("sack")
    tracer = PacketTracer()
    tracer.watch_node(flow.network.node("rcv"))
    flow.run(until=2.0)
    seqs = tracer.arrival_seqs(1)
    assert len(seqs) > 50
    assert reordering_ratio(seqs) == 0.0

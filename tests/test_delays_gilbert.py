"""Tests for per-packet delay models and Gilbert-Elliott bursty loss."""

import random

import pytest

from repro.net.delays import BimodalDelay, FixedDelay, UniformJitterDelay
from repro.net.lossgen import GilbertElliottLoss
from repro.net.network import Network, install_static_routes
from repro.net.packet import Packet
from repro.analysis.reordering import reordering_ratio

from conftest import make_flow


def _packet():
    return Packet("data", "a", "b", flow_id=1)


# ----------------------------------------------------------------------
# Delay models
# ----------------------------------------------------------------------
def test_fixed_delay():
    model = FixedDelay(0.05)
    assert model.delay_for(_packet()) == 0.05
    with pytest.raises(ValueError):
        FixedDelay(-1.0)


def test_uniform_jitter_bounds():
    model = UniformJitterDelay(0.01, 0.02, random.Random(1))  # lint: allow-module-random(fixed-seed fixture stream; the literal seed keeps the test deterministic)
    for _ in range(200):
        delay = model.delay_for(_packet())
        assert 0.01 <= delay <= 0.03


def test_uniform_jitter_validates():
    with pytest.raises(ValueError):
        UniformJitterDelay(-0.01, 0.02, random.Random(1))  # lint: allow-module-random(fixed-seed fixture stream; the literal seed keeps the test deterministic)
    with pytest.raises(ValueError):
        UniformJitterDelay(0.01, -0.02, random.Random(1))  # lint: allow-module-random(fixed-seed fixture stream; the literal seed keeps the test deterministic)


def test_bimodal_distribution():
    model = BimodalDelay(0.01, 0.05, 0.3, random.Random(2))  # lint: allow-module-random(fixed-seed fixture stream; the literal seed keeps the test deterministic)
    delays = [model.delay_for(_packet()) for _ in range(2000)]
    slow = sum(1 for d in delays if d > 0.03)
    assert set(round(d, 6) for d in delays) == {0.01, 0.06}
    assert 0.25 < slow / 2000 < 0.35


def test_bimodal_validates():
    with pytest.raises(ValueError):
        BimodalDelay(0.01, 0.05, 1.5, random.Random(1))  # lint: allow-module-random(fixed-seed fixture stream; the literal seed keeps the test deterministic)
    with pytest.raises(ValueError):
        BimodalDelay(-0.01, 0.05, 0.5, random.Random(1))  # lint: allow-module-random(fixed-seed fixture stream; the literal seed keeps the test deterministic)


def test_jitter_link_reorders_packets():
    """A single link with jitter >> packet spacing reorders delivery."""
    net = Network(seed=0)
    net.add_nodes("a", "b")
    jitter = UniformJitterDelay(0.01, 0.05, net.sim.rng.stream("jitter"))
    net.add_link("a", "b", bandwidth=1e8, delay=0.01, queue=1000,
                 delay_model=jitter)
    arrivals = []

    class Sink:
        def receive(self, packet):
            arrivals.append(packet.seq)

    net.node("b").agents[1] = Sink()

    def burst():
        for i in range(300):
            net.node("a").send(Packet("data", "a", "b", flow_id=1, seq=i))

    install_static_routes(net)
    net.sim.schedule(0.0, burst)
    net.run(until=2.0)
    assert len(arrivals) == 300
    assert reordering_ratio(arrivals) > 0.3


def test_link_without_delay_model_stays_in_order():
    net = Network(seed=0)
    net.add_nodes("a", "b")
    net.add_link("a", "b", bandwidth=1e8, delay=0.01, queue=1000)
    install_static_routes(net)
    arrivals = []

    class Sink:
        def receive(self, packet):
            arrivals.append(packet.seq)

    net.node("b").agents[1] = Sink()

    def burst():
        for i in range(100):
            net.node("a").send(Packet("data", "a", "b", flow_id=1, seq=i))

    net.sim.schedule(0.0, burst)
    net.run(until=2.0)
    assert arrivals == sorted(arrivals)


# ----------------------------------------------------------------------
# Gilbert-Elliott loss
# ----------------------------------------------------------------------
def test_gilbert_elliott_validates():
    with pytest.raises(ValueError):
        GilbertElliottLoss(random.Random(1), good_to_bad=1.5)  # lint: allow-module-random(fixed-seed fixture stream; the literal seed keeps the test deterministic)
    with pytest.raises(ValueError):
        GilbertElliottLoss(random.Random(1), bad_loss=-0.1)  # lint: allow-module-random(fixed-seed fixture stream; the literal seed keeps the test deterministic)


def test_gilbert_elliott_no_fades_means_no_loss():
    model = GilbertElliottLoss(random.Random(1), good_to_bad=0.0, good_loss=0.0)  # lint: allow-module-random(fixed-seed fixture stream; the literal seed keeps the test deterministic)
    assert not any(model.should_drop(_packet()) for _ in range(500))


def test_gilbert_elliott_burstiness():
    """Losses cluster: the drop sequence has long loss-free stretches and
    dense loss bursts, unlike Bernoulli at the same average rate."""
    model = GilbertElliottLoss(
        random.Random(3), good_to_bad=0.01, bad_to_good=0.1, bad_loss=1.0  # lint: allow-module-random(fixed-seed fixture stream; the literal seed keeps the test deterministic)
    )
    drops = [model.should_drop(_packet()) for _ in range(20_000)]
    assert model.bad_entries > 10
    total = sum(drops)
    assert total > 100
    # Burstiness: probability that a drop follows a drop far exceeds the
    # marginal drop rate.
    follow = sum(1 for i in range(1, len(drops)) if drops[i] and drops[i - 1])
    p_follow = follow / max(1, total)
    p_marginal = total / len(drops)
    assert p_follow > 3 * p_marginal


def test_tcp_pr_survives_wireless_fades():
    """Future-work scenario: bursty non-congestion loss.  TCP-PR's
    memorize list turns each fade into one window cut (or one extreme
    event for deep fades) and the flow keeps running."""
    from repro.core.pr import PrConfig

    net_rng = random.Random(7)  # lint: allow-module-random(fixed-seed fixture stream; the literal seed keeps the test deterministic)
    flow = make_flow(
        "tcp-pr",
        data_loss=GilbertElliottLoss(
            net_rng, good_to_bad=0.002, bad_to_good=0.3, bad_loss=1.0
        ),
        bandwidth=5e6,
        pr_config=PrConfig(initial_ssthresh=32),
    )
    flow.run(until=30.0)
    # 5 Mbps = 625 seg/s; demand decent utilization despite fades.
    assert flow.delivered > 0.4 * 625 * 30
    assert flow.sender.stats.drops_detected > 0

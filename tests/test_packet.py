"""Unit tests for the packet model."""

import pytest

from repro.net.packet import ACK_SIZE_BYTES, DATA_SIZE_BYTES, Packet


def test_uids_are_unique_and_increasing():
    a = Packet("data", "x", "y", flow_id=1, seq=0)
    b = Packet("data", "x", "y", flow_id=1, seq=1)
    assert b.uid > a.uid


def test_default_sizes():
    data = Packet("data", "x", "y", flow_id=1, seq=0)
    ack = Packet("ack", "y", "x", flow_id=1, ack=1)
    assert data.size_bytes == DATA_SIZE_BYTES
    assert ack.size_bytes == ACK_SIZE_BYTES


def test_explicit_size_respected():
    packet = Packet("data", "x", "y", flow_id=1, seq=0, size_bytes=576)
    assert packet.size_bytes == 576


def test_kind_predicates():
    data = Packet("data", "x", "y", flow_id=1, seq=0)
    ack = Packet("ack", "y", "x", flow_id=1, ack=3)
    assert data.is_data and not data.is_ack
    assert ack.is_ack and not ack.is_data


def test_invalid_kind_rejected():
    with pytest.raises(ValueError):
        Packet("syn", "x", "y", flow_id=1)


def test_sack_blocks_are_copied():
    blocks = [(5, 7)]
    packet = Packet("ack", "y", "x", flow_id=1, ack=2, sack_blocks=blocks)
    blocks.append((9, 10))
    assert packet.sack_blocks == [(5, 7)]


def test_options_default_to_none():
    packet = Packet("data", "x", "y", flow_id=1, seq=0)
    assert packet.sack_blocks is None
    assert packet.dsack is None
    assert packet.ts_val is None
    assert packet.ts_echo is None
    assert packet.route is None


def test_repr_mentions_direction():
    packet = Packet("data", "a", "b", flow_id=9, seq=4)
    assert "a->b" in repr(packet)
    assert "seq=4" in repr(packet)

"""Tests for sharded scenario execution: serial-vs-sharded equivalence,
partition invariants, streaming output, and appender concurrency."""

import json
import multiprocessing

import pytest

from repro.obs.export import JsonlAppender
from repro.scenarios import (
    ScenarioSpec,
    ShardPlan,
    WorkloadSpec,
    run_scale,
    run_shard_cell,
)
from repro.scenarios.shard import build_shard_network
from repro.topologies import DumbbellSpec, WanMeshSpec


def _pinned_scenario(seed=7):
    """A small deterministic scenario: ~28 short flows over 20 s."""
    return ScenarioSpec(
        topology=DumbbellSpec(num_pairs=4, seed=seed),
        workload=WorkloadSpec(
            arrival="poisson",
            arrival_rate=2.0,
            size="fixed",
            mean_size_segments=30.0,
            variant_mix=(("tcp-pr", 1.0), ("sack", 1.0)),
        ),
        duration=20.0,
        seed=seed,
        name="pinned",
    )


def _flow_records(path):
    with open(path) as handle:
        records = [json.loads(line) for line in handle]
    return sorted(
        (record["flow_id"], record["variant"], record["src"], record["dst"],
         record["size_segments"], record["delivered_segments"],
         record["completed"], record["finish_time"])
        for record in records
        if record.get("record") == "flow"
    )


def _report_key(report):
    data = report.to_jsonable()
    data.pop("max_rss_kb")  # the only legitimately nondeterministic field
    return data


def test_sharded_run_is_permutation_of_serial(tmp_path):
    """The pinned acceptance scenario: a sharded run equals the serial
    run modulo shard ordering — same flows, same per-flow outcomes."""
    scenario = _pinned_scenario()
    serial_path = tmp_path / "serial.jsonl"
    sharded_path = tmp_path / "sharded.jsonl"
    serial = run_scale(
        ShardPlan(scenario=scenario, num_shards=1,
                  stream_path=str(serial_path)),
        jobs=1,
    )
    sharded = run_scale(
        ShardPlan(scenario=scenario, num_shards=3,
                  stream_path=str(sharded_path)),
        jobs=3,
    )
    serial_flows = _flow_records(serial_path)
    sharded_flows = _flow_records(sharded_path)
    assert len(serial_flows) == serial.flows > 10
    # Identity, sizing, and start-independent outcomes all agree.
    assert [f[:5] for f in serial_flows] == [f[:5] for f in sharded_flows]
    assert serial.flows == sharded.flows
    assert serial.delivered_segments == sharded.delivered_segments
    assert serial.per_variant == sharded.per_variant


def test_sharded_serial_and_parallel_bit_identical(tmp_path):
    """For a fixed shard count, jobs=1 and jobs=N are bit-identical
    (the executor's core guarantee, inherited by scenarios)."""
    scenario = _pinned_scenario()
    path_a = tmp_path / "a.jsonl"
    path_b = tmp_path / "b.jsonl"
    report_a = run_scale(
        ShardPlan(scenario=scenario, num_shards=3, stream_path=str(path_a)),
        jobs=1,
    )
    report_b = run_scale(
        ShardPlan(scenario=scenario, num_shards=3, stream_path=str(path_b)),
        jobs=3,
    )
    assert _flow_records(path_a) == _flow_records(path_b)
    assert _report_key(report_a) == _report_key(report_b)


def test_shards_partition_the_population():
    """Every flow lands in exactly one shard, keyed by flow_id residue."""
    scenario = _pinned_scenario()
    all_ids = {flow.flow_id for flow in scenario.flows()}
    plan = ShardPlan(scenario=scenario, num_shards=4)
    seen = []
    for cell in plan.cells():
        summary = cell.run()
        assert summary["live_agents"] == 0  # the reaper retired everything
        seen.append(summary["flows"])
    assert sum(seen) == len(all_ids)


def test_stream_has_header_then_valid_records(tmp_path):
    path = tmp_path / "stream.jsonl"
    run_scale(
        ShardPlan(scenario=_pinned_scenario(), num_shards=2,
                  stream_path=str(path)),
        jobs=2,
    )
    with open(path) as handle:
        lines = handle.read().splitlines()
    records = [json.loads(line) for line in lines]  # every line parses
    assert records[0]["record"] == "header"
    assert records[0]["schema"] == "repro.obs/v1"
    kinds = {record["record"] for record in records}
    assert kinds == {"header", "flow", "shard"}
    assert sum(1 for r in records if r["record"] == "shard") == 2


def test_fixed_stagger_flows_admitted_at_spec_start(tmp_path):
    """Fixed-arrival starts are drawn unsorted; the generator must hand
    them to the admission chain sorted so every flow is constructed at
    its spec start, not lazily at a later flow's start."""
    scenario = ScenarioSpec(
        topology=DumbbellSpec(num_pairs=4, seed=11),
        workload=WorkloadSpec(
            arrival="fixed",
            flow_count=16,
            start_stagger=8.0,
            size="fixed",
            mean_size_segments=20.0,
        ),
        duration=20.0,
        seed=11,
        name="fixed-stagger",
    )
    starts = [flow.start for flow in scenario.flows()]
    assert starts == sorted(starts)
    assert len(set(starts)) > 1  # staggering is non-vacuous
    path = tmp_path / "fixed.jsonl"
    report = run_scale(
        ShardPlan(scenario=scenario, num_shards=3, stream_path=str(path)),
        jobs=1,
    )
    records = [json.loads(line) for line in open(path)]
    flows = [r for r in records if r.get("record") == "flow"]
    assert len(flows) == report.flows == scenario.flow_count() == 16
    for record in flows:
        assert record["admitted"] == record["start"]


def test_shards_simulate_the_specs_own_graph():
    """Structural randomness (wan-mesh chords/delays) comes from the
    topology's seed, never the per-shard simulator seed: every shard of
    every num_shards builds the identical graph the spec describes."""
    spec = ScenarioSpec(
        topology=WanMeshSpec(sites=6, degree=3.0, hosts_per_site=1, seed=21),
        workload=WorkloadSpec(arrival="poisson", arrival_rate=1.0),
        duration=5.0,
        seed=21,
        name="wan",
    )
    plan = ShardPlan(scenario=spec, num_shards=2)

    def link_delays(topology):
        return {
            name: link.delay
            for name, link in topology.network.links.items()
        }

    reference = link_delays(spec.topology.build())
    for index in range(2):
        built = link_delays(build_shard_network(spec, plan.shard_seed(index)))
        assert built == reference


def test_run_shard_cell_validates_index():
    scenario = _pinned_scenario().to_jsonable()
    with pytest.raises(ValueError):
        run_shard_cell(scenario=scenario, shard_index=3, num_shards=2, seed=0)


def test_plan_validation_and_seed_derivation():
    scenario = _pinned_scenario(seed=5)
    with pytest.raises(ValueError):
        ShardPlan(scenario=scenario, num_shards=0)
    with pytest.raises(ValueError):
        ShardPlan(scenario=scenario, reap_interval=0.0)
    plan = ShardPlan(scenario=scenario, num_shards=3)
    assert plan.seed == 5
    seeds = {plan.shard_seed(i) for i in range(3)}
    assert len(seeds) == 3  # each shard simulates under its own seed
    reseeded = plan.with_seed(6)
    assert reseeded.scenario.seed == 6
    assert reseeded.shard_seed(0) != plan.shard_seed(0)
    assert plan.with_seed(None) is plan


def test_assemble_partial_reports_failed_shards():
    plan = ShardPlan(scenario=_pinned_scenario(), num_shards=2)
    summary = run_shard_cell(
        scenario=plan.scenario.to_jsonable(), shard_index=0, num_shards=2,
        seed=plan.shard_seed(0),
    )
    report = plan.assemble_partial(
        {"shard/0": summary}, {"shard/1": "worker died"}
    )
    assert report.failed_shards == ["shard/1"]
    assert not report.complete
    assert report.flows == summary["flows"]


def _append_burst(path, worker):
    appender = JsonlAppender(path, header=False)
    for i in range(200):
        appender.write({"record": "flow", "worker": worker, "i": i,
                        "pad": "x" * (worker * 40 + 1)})
    appender.close()


def test_concurrent_appenders_never_interleave(tmp_path):
    """Multiple processes appending to one stream produce only whole
    lines (the O_APPEND single-write guarantee shards rely on)."""
    path = str(tmp_path / "concurrent.jsonl")
    JsonlAppender(path, scenario="concurrency-test").close()  # header
    context = multiprocessing.get_context("fork")
    workers = [
        context.Process(target=_append_burst, args=(path, worker))
        for worker in range(4)
    ]
    for process in workers:
        process.start()
    for process in workers:
        process.join(timeout=60)
        assert process.exitcode == 0
    with open(path) as handle:
        records = [json.loads(line) for line in handle]
    flows = [record for record in records if record.get("record") == "flow"]
    assert len(flows) == 4 * 200
    for worker in range(4):
        indices = [r["i"] for r in flows if r["worker"] == worker]
        assert indices == list(range(200))  # per-writer order preserved

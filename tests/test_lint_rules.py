"""Per-rule fixture tests for the ``repro.lint`` rule catalog.

Every rule gets at least one positive fixture (a snippet that must be
flagged), one negative fixture (a near-miss that must pass), and a
pragma-suppressed fixture.  Fixtures are linted in-memory via
``lint_source(src, rel=...)``, with ``rel`` driving the same scoping the
rule applies to real files.
"""

import textwrap

from repro.lint import RULES, lint_source, rule_by_slug


def flagged(src, rel, slug):
    """Findings of one rule for a dedented in-memory snippet."""
    findings = lint_source(textwrap.dedent(src), rel=rel)
    return [finding for finding in findings if finding.rule == slug]


# ----------------------------------------------------------------------
# Catalog sanity
# ----------------------------------------------------------------------
def test_catalog_slugs_and_codes_unique():
    slugs = [rule.slug for rule in RULES]
    codes = [rule.code for rule in RULES]
    assert len(set(slugs)) == len(slugs)
    assert len(set(codes)) == len(codes)
    for rule in RULES:
        assert rule_by_slug(rule.slug) is rule
        assert rule.summary


def test_rule_by_slug_unknown():
    assert rule_by_slug("no-such-rule") is None


# ----------------------------------------------------------------------
# REP101 module-random
# ----------------------------------------------------------------------
def test_module_random_positive_draw():
    src = """
        import random
        x = random.random()
    """
    assert flagged(src, "net/foo.py", "module-random")


def test_module_random_positive_constructor_and_seed():
    src = """
        import random
        random.seed(7)
        r = random.Random(3)
    """
    assert len(flagged(src, "core/foo.py", "module-random")) == 2


def test_module_random_positive_from_import():
    src = "from random import choice\n"
    assert flagged(src, "net/foo.py", "module-random")


def test_module_random_negative_in_rng_module():
    src = """
        import random
        r = random.Random(3)
    """
    assert not flagged(src, "sim/rng.py", "module-random")


def test_module_random_negative_annotation_only():
    src = """
        import random
        def f(rng: random.Random) -> float:
            return rng.random()
    """
    assert not flagged(src, "net/foo.py", "module-random")


def test_module_random_pragma_suppressed():
    src = """
        import random
        r = random.Random(0)  # lint: allow-module-random(fixture reason)
    """
    assert not flagged(src, "net/foo.py", "module-random")


# ----------------------------------------------------------------------
# REP102 wallclock
# ----------------------------------------------------------------------
def test_wallclock_positive():
    src = """
        import time
        t = time.time()
    """
    assert flagged(src, "core/foo.py", "wallclock")


def test_wallclock_positive_from_import():
    src = "from time import perf_counter\n"
    assert flagged(src, "core/foo.py", "wallclock")


def test_wallclock_negative_allowlisted_module():
    src = """
        import time
        t = time.monotonic()
    """
    assert not flagged(src, "sim/engine.py", "wallclock")
    assert not flagged(src, "exec/runner.py", "wallclock")


def test_wallclock_negative_import_alone():
    assert not flagged("import time\n", "core/foo.py", "wallclock")


def test_wallclock_pragma_suppressed():
    src = """
        import time
        time.sleep(1.0)  # lint: allow-wallclock(fixture reason)
    """
    assert not flagged(src, "core/foo.py", "wallclock")


# ----------------------------------------------------------------------
# REP103 set-iteration
# ----------------------------------------------------------------------
def test_set_iteration_positive_literal():
    src = """
        for x in {1, 2, 3}:
            print(x)
    """
    assert flagged(src, "core/foo.py", "set-iteration")


def test_set_iteration_positive_local_set_variable():
    src = """
        def f(items):
            pending = set(items)
            for x in pending:
                print(x)
    """
    assert flagged(src, "core/foo.py", "set-iteration")


def test_set_iteration_positive_comprehension():
    src = "out = [y for y in {1, 2}]\n"
    assert flagged(src, "core/foo.py", "set-iteration")


def test_set_iteration_negative_sorted():
    src = """
        def f(items):
            pending = set(items)
            for x in sorted(pending):
                print(x)
    """
    assert not flagged(src, "core/foo.py", "set-iteration")


def test_set_iteration_negative_list():
    src = """
        for x in [1, 2]:
            print(x)
    """
    assert not flagged(src, "core/foo.py", "set-iteration")


def test_set_iteration_pragma_suppressed():
    src = """
        # lint: allow-set-iteration(fixture reason)
        for x in {1, 2}:
            print(x)
    """
    assert not flagged(src, "core/foo.py", "set-iteration")


# ----------------------------------------------------------------------
# REP104 unsorted-json
# ----------------------------------------------------------------------
def test_unsorted_json_positive():
    src = """
        import hashlib
        import json
        def key(d):
            return hashlib.sha256(json.dumps(d).encode()).hexdigest()
    """
    assert flagged(src, "exec/cache.py", "unsorted-json")


def test_unsorted_json_negative_sorted_keys():
    src = """
        import hashlib
        import json
        def key(d):
            blob = json.dumps(d, sort_keys=True)
            return hashlib.sha256(blob.encode()).hexdigest()
    """
    assert not flagged(src, "exec/cache.py", "unsorted-json")


def test_unsorted_json_negative_no_hashing():
    src = """
        import json
        def dump(d):
            return json.dumps(d)
    """
    assert not flagged(src, "exec/cache.py", "unsorted-json")


def test_unsorted_json_pragma_suppressed():
    src = """
        import hashlib
        import json
        blob = json.dumps({})  # lint: allow-unsorted-json(fixture reason)
    """
    assert not flagged(src, "exec/cache.py", "unsorted-json")


# ----------------------------------------------------------------------
# REP105 pickle
# ----------------------------------------------------------------------
def test_pickle_positive_import():
    src = """
        import pickle
        data = pickle.dumps({})
    """
    assert flagged(src, "exec/runner.py", "pickle")


def test_pickle_positive_from_import_and_friends():
    src = """
        from pickle import dumps
        import cloudpickle
        import shelve
    """
    assert len(flagged(src, "obs/export.py", "pickle")) == 3


def test_pickle_positive_dotted_import():
    src = "import dill.settings\n"
    assert flagged(src, "net/foo.py", "pickle")


def test_pickle_negative_in_checkpoint_subsystem():
    src = """
        import pickle
        data = pickle.dumps({})
    """
    assert not flagged(src, "checkpoint/codec.py", "pickle")
    assert not flagged(src, "exec/cache.py", "pickle")


def test_pickle_negative_unrelated_module_name():
    src = "from repro.checkpoint import save_checkpoint\n"
    assert not flagged(src, "experiments/fig6_multipath.py", "pickle")


def test_pickle_pragma_suppressed():
    src = """
        import pickle  # lint: allow-pickle(fixture reason)
    """
    assert not flagged(src, "exec/runner.py", "pickle")


# ----------------------------------------------------------------------
# REP201 slots
# ----------------------------------------------------------------------
def test_slots_positive_plain_class():
    src = """
        class Thing:
            def __init__(self):
                self.x = 1
    """
    assert flagged(src, "sim/foo.py", "slots")
    assert flagged(src, "net/link.py", "slots")


def test_slots_negative_has_slots():
    src = """
        class Thing:
            __slots__ = ("x",)
            def __init__(self):
                self.x = 1
    """
    assert not flagged(src, "sim/foo.py", "slots")


def test_slots_negative_slotted_dataclass():
    src = """
        from dataclasses import dataclass
        @dataclass(frozen=True, slots=True)
        class Thing:
            x: int
    """
    assert not flagged(src, "sim/foo.py", "slots")


def test_slots_negative_exception_and_protocol():
    src = """
        from typing import Protocol
        class FooError(Exception):
            pass
        class Policy(Protocol):
            def pick(self) -> int: ...
    """
    assert not flagged(src, "sim/foo.py", "slots")


def test_slots_negative_out_of_scope_module():
    src = """
        class Thing:
            pass
    """
    assert not flagged(src, "app/foo.py", "slots")


def test_slots_pragma_suppressed():
    src = """
        class Thing:  # lint: allow-slots(fixture reason)
            pass
    """
    assert not flagged(src, "sim/foo.py", "slots")


# ----------------------------------------------------------------------
# REP202 post-kwargs
# ----------------------------------------------------------------------
def test_post_kwargs_positive_keyword():
    src = "sim.post_in(1.0, cb, label='x')\n"
    assert flagged(src, "app/foo.py", "post-kwargs")


def test_post_kwargs_positive_lambda():
    src = "sim.post(0.0, lambda: None)\n"
    assert flagged(src, "app/foo.py", "post-kwargs")


def test_post_kwargs_positive_cached_bound_method():
    src = "self._post_in(1.0, cb, args=(p,))\n"
    assert flagged(src, "net/foo.py", "post-kwargs")


def test_post_kwargs_negative_positional():
    src = "sim.post_in(1.0, cb, None, 'x')\n"
    assert not flagged(src, "app/foo.py", "post-kwargs")


def test_post_kwargs_negative_schedule_keywords_allowed():
    src = "handle = sim.schedule(1.0, cb, label='x', seq=stamp)\n"
    assert not flagged(src, "app/foo.py", "post-kwargs")


def test_post_kwargs_pragma_suppressed():
    src = "sim.post(0.0, cb, label='x')  # lint: allow-post-kwargs(fixture reason)\n"
    assert not flagged(src, "app/foo.py", "post-kwargs")


# ----------------------------------------------------------------------
# REP203 handle-mutation
# ----------------------------------------------------------------------
def test_handle_mutation_positive_schedule_local():
    src = """
        def f(sim, cb):
            h = sim.schedule(1.0, cb)
            h.time = 2.0
    """
    assert flagged(src, "tcp/foo.py", "handle-mutation")


def test_handle_mutation_positive_handle_attribute():
    src = """
        def f(self):
            self._timer_handle.time = 3.0
    """
    assert flagged(src, "tcp/foo.py", "handle-mutation")


def test_handle_mutation_negative_inside_sim():
    src = """
        def f(self, target):
            target.callback = None
    """
    assert not flagged(src, "sim/engine.py", "handle-mutation")


def test_handle_mutation_negative_read_and_cancel():
    src = """
        def f(sim, cb):
            h = sim.schedule(1.0, cb)
            if h.time < 5.0:
                h.cancel()
    """
    assert not flagged(src, "tcp/foo.py", "handle-mutation")


def test_handle_mutation_pragma_suppressed():
    src = """
        def f(self):
            self._timer_handle.time = 3.0  # lint: allow-handle-mutation(fixture reason)
    """
    assert not flagged(src, "tcp/foo.py", "handle-mutation")


# ----------------------------------------------------------------------
# REP205 compiled-compat
# ----------------------------------------------------------------------
def test_compiled_compat_positive_del_attribute():
    src = """
        def f(self):
            del self._cache
    """
    assert flagged(src, "sim/engine.py", "compiled-compat")


def test_compiled_compat_positive_setattr():
    src = """
        def restore(obj, state):
            for name, value in state.items():
                setattr(obj, name, value)
    """
    assert flagged(src, "net/link.py", "compiled-compat")


def test_compiled_compat_positive_instance_dict():
    src = """
        def snapshot(self):
            return dict(self.__dict__)
    """
    assert flagged(src, "net/node.py", "compiled-compat")


def test_compiled_compat_negative_outside_allowlist():
    """The same patterns are fine in modules with no compiled mirror."""
    src = """
        def restore(obj, state):
            del obj.stale
            for name, value in state.items():
                setattr(obj, name, value)
            return obj.__dict__
    """
    assert not flagged(src, "checkpoint/state.py", "compiled-compat")


def test_compiled_compat_negative_none_assignment_and_del_local():
    src = """
        def f(self):
            self._cache = None
            scratch = []
            del scratch
    """
    assert not flagged(src, "sim/engine.py", "compiled-compat")


def test_compiled_compat_pragma_suppressed():
    src = """
        def f(self):
            del self._cache  # lint: allow-compiled-compat(fixture reason)
    """
    assert not flagged(src, "sim/engine.py", "compiled-compat")


# ----------------------------------------------------------------------
# REP301 broad-except
# ----------------------------------------------------------------------
def test_broad_except_positive():
    src = """
        try:
            f()
        except Exception:
            pass
    """
    assert flagged(src, "exec/foo.py", "broad-except")


def test_broad_except_positive_bare():
    src = """
        try:
            f()
        except:
            pass
    """
    assert flagged(src, "exec/foo.py", "broad-except")


def test_broad_except_negative_narrow():
    src = """
        try:
            f()
        except ValueError:
            pass
    """
    assert not flagged(src, "exec/foo.py", "broad-except")


def test_broad_except_negative_cleanup_reraise():
    src = """
        try:
            f()
        except BaseException:
            cleanup()
            raise
    """
    assert not flagged(src, "exec/foo.py", "broad-except")


def test_broad_except_pragma_suppressed():
    src = """
        try:
            f()
        # lint: allow-broad-except(fixture reason)
        except Exception:
            pass
    """
    assert not flagged(src, "exec/foo.py", "broad-except")


# ----------------------------------------------------------------------
# REP302 mutable-default
# ----------------------------------------------------------------------
def test_mutable_default_positive():
    src = """
        def f(a=[], b={}, c=set()):
            return a, b, c
    """
    assert len(flagged(src, "core/foo.py", "mutable-default")) == 3


def test_mutable_default_positive_kwonly():
    src = """
        def f(*, a=[]):
            return a
    """
    assert flagged(src, "core/foo.py", "mutable-default")


def test_mutable_default_negative():
    src = """
        def f(a=None, b=(), c=0):
            return a, b, c
    """
    assert not flagged(src, "core/foo.py", "mutable-default")


def test_mutable_default_pragma_suppressed():
    src = """
        def f(a=[]):  # lint: allow-mutable-default(fixture reason)
            return a
    """
    assert not flagged(src, "core/foo.py", "mutable-default")


# ----------------------------------------------------------------------
# REP303 float-time-eq
# ----------------------------------------------------------------------
def test_float_time_eq_positive_now():
    src = "due = t == self.sim.now\n"
    assert flagged(src, "core/foo.py", "float-time-eq")


def test_float_time_eq_positive_time_suffix():
    src = "stale = sent_time != arrival\n"
    assert flagged(src, "core/foo.py", "float-time-eq")


def test_float_time_eq_negative_ordering():
    src = "due = self.sim.now >= deadline\n"
    assert not flagged(src, "core/foo.py", "float-time-eq")


def test_float_time_eq_negative_none_check():
    src = "unset = deadline == None\n"
    assert not flagged(src, "core/foo.py", "float-time-eq")


def test_float_time_eq_negative_unrelated_names():
    src = "same = count == total\n"
    assert not flagged(src, "core/foo.py", "float-time-eq")


def test_float_time_eq_pragma_suppressed():
    src = "due = t == self.sim.now  # lint: allow-float-time-eq(fixture reason)\n"
    assert not flagged(src, "core/foo.py", "float-time-eq")


# ----------------------------------------------------------------------
# REP001 pragma hygiene
# ----------------------------------------------------------------------
def test_pragma_empty_reason_is_a_finding():
    src = "x = 1  # lint: allow-slots()\n"
    assert flagged(src, "core/foo.py", "pragma")


def test_pragma_missing_parens_is_a_finding():
    src = "x = 1  # lint: allow-slots\n"
    assert flagged(src, "core/foo.py", "pragma")


def test_pragma_suppresses_same_line_and_line_above_only():
    src = """
        class A:  # lint: allow-slots(same line)
            pass
        # lint: allow-slots(line above)
        class B:
            pass
        # lint: allow-slots(too far away)

        class C:
            pass
    """
    findings = flagged(src, "sim/foo.py", "slots")
    assert [f.message for f in findings] == [
        "hot-path class 'C' has no __slots__ (and is not a slots=True "
        "dataclass): per-instance __dict__ costs memory and "
        "attribute-lookup time on the event path"
    ]


def test_pragma_for_a_different_rule_does_not_suppress():
    src = """
        class A:  # lint: allow-broad-except(wrong rule)
            pass
    """
    assert flagged(src, "sim/foo.py", "slots")


# ----------------------------------------------------------------------
# Pragma scoping on decorated definitions
# ----------------------------------------------------------------------
def test_pragma_above_decorator_suppresses_def_rule():
    src = """
        # lint: allow-mutable-default(fixture: shared default is the point)
        @staticmethod
        def f(x=[]):
            return x
    """
    assert not flagged(src, "core/foo.py", "mutable-default")


def test_pragma_between_decorator_and_def_suppresses():
    src = """
        @staticmethod
        # lint: allow-mutable-default(fixture: shared default is the point)
        def f(x=[]):
            return x
    """
    assert not flagged(src, "core/foo.py", "mutable-default")


def test_decorated_def_without_pragma_still_flagged():
    src = """
        @staticmethod
        def f(x=[]):
            return x
    """
    assert flagged(src, "core/foo.py", "mutable-default")


def test_pragma_above_decorator_wrong_rule_does_not_suppress():
    src = """
        # lint: allow-slots(wrong rule entirely)
        @staticmethod
        def f(x=[]):
            return x
    """
    assert flagged(src, "core/foo.py", "mutable-default")


# ----------------------------------------------------------------------
# Finding.to_record(): the stable exchange schema
# ----------------------------------------------------------------------
def test_finding_to_record_golden_schema():
    from repro.lint.findings import Finding

    finding = Finding(
        rule="module-random",
        code="REP101",
        path="src/repro/net/foo.py",
        line=3,
        col=4,
        message="a global-random draw",
        trace=("via jitter() at src/repro/net/bar.py:7",),
        suppress_lines=(2,),
    )
    # The record schema is load-bearing: the lint cache, the JSON
    # formatter, and SARIF conversion all round-trip through it.  Keys
    # may be added, never renamed or removed.
    assert finding.to_record() == {
        "rule": "module-random",
        "code": "REP101",
        "path": "src/repro/net/foo.py",
        "line": 3,
        "col": 4,
        "message": "a global-random draw",
        "trace": ["via jitter() at src/repro/net/bar.py:7"],
    }


def test_finding_record_round_trip():
    from repro.lint.findings import Finding

    finding = Finding(
        rule="wallclock",
        code="REP102",
        path="src/repro/sim/x.py",
        line=10,
        col=0,
        message="m",
    )
    back = Finding.from_record(finding.to_record())
    assert back.to_record() == finding.to_record()

"""Tests for the RR-TCP extension (percentile dupthresh adaptation)."""

import pytest

from repro.net.lossgen import DeterministicLoss
from repro.tcp.rrtcp import PercentilePolicy, RrTcpSender

from conftest import make_flow
from test_tdfr import make_reordering_tcp_flow


# ----------------------------------------------------------------------
# PercentilePolicy arithmetic
# ----------------------------------------------------------------------
def test_percentile_policy_tracks_distribution():
    policy = PercentilePolicy(percentile=0.95, history=100)
    for length in [4] * 19 + [10]:
        result = policy.adjust(3, length)
    # ceil(0.95 * 20) = 19th order statistic = 4 -> dupthresh 5;
    # the lone 10 sits in the top 5% and is ignored.
    assert result == 5
    max_policy = PercentilePolicy(percentile=1.0)
    for length in [4] * 19 + [10]:
        max_result = max_policy.adjust(3, length)
    assert max_result == 11  # percentile 1.0 tracks the maximum


def test_percentile_policy_median():
    policy = PercentilePolicy(percentile=0.5)
    results = [policy.adjust(3, length) for length in (2, 8, 2, 8, 2)]
    # Median of {2,8,2,8,2} is 2 -> 3.
    assert results[-1] == 3


def test_percentile_policy_history_bounded():
    policy = PercentilePolicy(percentile=1.0, history=5)
    for length in (100, 1, 1, 1, 1, 1):
        policy.adjust(3, length)
    # The 100 fell out of the 5-sample history: max is now 1 -> 2.
    assert policy.adjust(3, 1) == 2


def test_percentile_policy_validates():
    with pytest.raises(ValueError):
        PercentilePolicy(percentile=0.0)
    with pytest.raises(ValueError):
        PercentilePolicy(percentile=1.2)
    with pytest.raises(ValueError):
        PercentilePolicy(history=0)


# ----------------------------------------------------------------------
# Sender behaviour
# ----------------------------------------------------------------------
def test_dupthresh_clamped_by_window():
    flow = make_flow("rr-tcp")
    sender = flow.sender
    assert isinstance(sender, RrTcpSender)
    sender.dupthresh = 50  # target far above a small window
    sender.cwnd = 5.0
    sender.snd_max, sender.snd_una = 10, 5  # flight = 5
    assert sender.dupthresh == 4  # min(cwnd, flight) - 1
    assert sender.target_dupthresh == 50


def test_real_loss_recovers_like_sack():
    flow = make_flow("rr-tcp", data_loss=DeterministicLoss([40]))
    flow.run(until=10.0)
    assert flow.sender.stats.timeouts == 0
    assert flow.sender.stats.retransmits == 1
    assert flow.delivered > 800


def test_adapts_under_persistent_reordering():
    net, sender, receiver = make_reordering_tcp_flow("rr-tcp")
    net.run(until=10.0)
    # The percentile target climbs above the default 3 once undos happen.
    assert sender.stats.extra["undos"] > 0
    assert sender.target_dupthresh > 3


def test_beats_fixed_increment_variants_under_reordering():
    """RR-TCP's percentile adaptation converges on a workable dupthresh
    faster than increment-by-one, so it loses less throughput to
    spurious fast retransmits."""
    net, _, rr_receiver = make_reordering_tcp_flow("rr-tcp")
    net.run(until=10.0)
    net2, _, nm_receiver = make_reordering_tcp_flow("dsack-nm")
    net2.run(until=10.0)
    assert rr_receiver.delivered > nm_receiver.delivered


def test_registry_aliases():
    from repro.tcp.registry import canonical_name

    assert canonical_name("RR-TCP") == "rr-tcp"
    assert canonical_name("rrtcp") == "rr-tcp"

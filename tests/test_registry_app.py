"""Tests for the variant registry and application-layer sources."""

import pytest

from repro.app.bulk import BulkTransfer
from repro.app.onoff import DatagramSink, OnOffSource
from repro.core.pr import TcpPrSender
from repro.net.network import Network, install_static_routes
from repro.tcp.dsack_response import DsackSender
from repro.tcp.registry import available_variants, canonical_name, make_sender
from repro.tcp.sack import SackSender


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_available_variants_cover_figure_6():
    variants = available_variants()
    for name in ("tcp-pr", "tdfr", "dsack-nm", "inc-by-1", "inc-by-n", "ewma"):
        assert name in variants


def test_canonical_name_resolves_paper_labels():
    assert canonical_name("TCP-PR") == "tcp-pr"
    assert canonical_name("TD-FR") == "tdfr"
    assert canonical_name("Inc by 1") == "inc-by-1"
    assert canonical_name("Inc by N") == "inc-by-n"
    assert canonical_name("TCP-SACK") == "sack"


def test_canonical_name_rejects_unknown():
    with pytest.raises(ValueError):
        canonical_name("tcp-vegas")


def _simple_net():
    net = Network(seed=0)
    net.add_nodes("a", "b")
    net.add_duplex_link("a", "b", bandwidth=1e6, delay=0.01)
    install_static_routes(net)
    return net


def test_make_sender_builds_each_variant():
    for i, name in enumerate(available_variants()):
        net = _simple_net()
        sender = make_sender(name, net.sim, net.node("a"), 1, "b")
        assert sender.variant in (name, "dsack")


def test_make_sender_tcp_pr_type():
    net = _simple_net()
    sender = make_sender("tcp-pr", net.sim, net.node("a"), 1, "b")
    assert isinstance(sender, TcpPrSender)


def test_make_sender_policy_wiring():
    net = _simple_net()
    sender = make_sender("ewma", net.sim, net.node("a"), 1, "b")
    assert isinstance(sender, DsackSender)
    assert sender.policy.name == "ewma"


# ----------------------------------------------------------------------
# BulkTransfer
# ----------------------------------------------------------------------
def test_bulk_transfer_wires_flow():
    net = _simple_net()
    flow = BulkTransfer(net, "sack", "a", "b", flow_id=1)
    assert isinstance(flow.sender, SackSender)
    net.run(until=5.0)
    assert flow.delivered_segments > 100
    assert flow.delivered_bytes() == flow.delivered_segments * 1000
    assert flow.throughput_bps(5.0) == pytest.approx(
        flow.delivered_bytes() * 8 / 5.0
    )


def test_bulk_transfer_start_delay():
    net = _simple_net()
    flow = BulkTransfer(net, "sack", "a", "b", flow_id=1, start_at=2.0)
    net.run(until=1.9)
    assert flow.delivered_segments == 0
    net.run(until=4.0)
    assert flow.delivered_segments > 0


def test_bulk_transfer_validates_interval():
    net = _simple_net()
    flow = BulkTransfer(net, "sack", "a", "b", flow_id=1)
    with pytest.raises(ValueError):
        flow.throughput_bps(0.0)


# ----------------------------------------------------------------------
# OnOffSource
# ----------------------------------------------------------------------
def test_cbr_rate_accuracy():
    net = _simple_net()
    source = OnOffSource(
        net.sim, net.node("a"), 7, "b", rate_bps=400_000, mean_off=0.0
    )
    sink = DatagramSink(net.sim, net.node("b"), 7)
    source.start(0.0)
    net.run(until=10.0)
    expected = 400_000 * 10 / 8000  # packets
    assert sink.packets_received == pytest.approx(expected, rel=0.05)


def test_onoff_produces_less_than_cbr():
    net = _simple_net()
    source = OnOffSource(
        net.sim, net.node("a"), 7, "b",
        rate_bps=400_000, mean_on=0.2, mean_off=0.2,
    )
    sink = DatagramSink(net.sim, net.node("b"), 7)
    source.start(0.0)
    net.run(until=10.0)
    full_rate = 400_000 * 10 / 8000
    assert 0 < sink.packets_received < 0.8 * full_rate


def test_onoff_validates_rate():
    net = _simple_net()
    with pytest.raises(ValueError):
        OnOffSource(net.sim, net.node("a"), 7, "b", rate_bps=0)


def test_onoff_validates_periods():
    net = _simple_net()
    with pytest.raises(ValueError):
        OnOffSource(net.sim, net.node("a"), 7, "b", rate_bps=1e5, mean_on=0.0)
    with pytest.raises(ValueError):
        OnOffSource(net.sim, net.node("a"), 8, "b", rate_bps=1e5, mean_off=-1.0)


def test_onoff_start_idempotent():
    net = _simple_net()
    source = OnOffSource(net.sim, net.node("a"), 7, "b", rate_bps=100_000)
    DatagramSink(net.sim, net.node("b"), 7)
    source.start(0.0)
    source.start(0.0)
    net.run(until=1.0)
    assert source.packets_sent > 0

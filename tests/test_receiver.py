"""Unit tests for the TCP receiver (cumulative ACK, SACK, DSACK)."""

import pytest
from hypothesis import given, strategies as st

from repro.net.network import Network
from repro.net.packet import Packet
from repro.tcp.receiver import TcpReceiver


class AckCollector:
    def __init__(self):
        self.acks = []

    def receive(self, packet):
        self.acks.append(packet)


def _setup(sack=True, dsack=True, max_sack_blocks=3):
    net = Network(seed=0)
    net.add_nodes("snd", "rcv")
    net.add_duplex_link("snd", "rcv", bandwidth=1e9, delay=1e-6)
    from repro.net.network import install_static_routes

    install_static_routes(net)
    receiver = TcpReceiver(
        net.sim, net.node("rcv"), 1, "snd",
        sack=sack, dsack=dsack, max_sack_blocks=max_sack_blocks,
    )
    collector = AckCollector()
    net.node("snd").agents[1] = collector
    return net, receiver, collector


def _deliver(net, receiver, seqs):
    """Deliver data segments directly to the receiver, in order given."""
    for seq in seqs:
        receiver.receive(Packet("data", "snd", "rcv", flow_id=1, seq=seq))
    net.run(until=net.sim.now + 1.0)


def test_in_order_delivery_advances_cumulative():
    net, receiver, collector = _setup()
    _deliver(net, receiver, [0, 1, 2])
    assert receiver.rcv_nxt == 3
    assert [a.ack for a in collector.acks] == [1, 2, 3]
    assert all(a.sack_blocks is None for a in collector.acks)


def test_gap_generates_dupacks_with_sack():
    net, receiver, collector = _setup()
    _deliver(net, receiver, [0, 2, 3])
    assert receiver.rcv_nxt == 1
    assert [a.ack for a in collector.acks] == [1, 1, 1]
    assert collector.acks[1].sack_blocks == [(2, 3)]
    assert collector.acks[2].sack_blocks == [(2, 4)]


def test_hole_fill_jumps_cumulative():
    net, receiver, collector = _setup()
    _deliver(net, receiver, [0, 2, 3, 1])
    assert receiver.rcv_nxt == 4
    assert collector.acks[-1].ack == 4
    assert collector.acks[-1].sack_blocks is None


def test_duplicate_triggers_dsack():
    net, receiver, collector = _setup()
    _deliver(net, receiver, [0, 1, 1])
    assert receiver.duplicates == 1
    last = collector.acks[-1]
    assert last.dsack == (1, 2)
    assert last.ack == 2


def test_duplicate_of_buffered_out_of_order_segment():
    net, receiver, collector = _setup()
    _deliver(net, receiver, [0, 5, 5])
    assert receiver.duplicates == 1
    assert collector.acks[-1].dsack == (5, 6)
    # The SACK information is still present alongside the DSACK.
    assert (5, 6) in (collector.acks[-1].sack_blocks or [])


def test_dsack_disabled():
    net, receiver, collector = _setup(dsack=False)
    _deliver(net, receiver, [0, 0])
    assert collector.acks[-1].dsack is None


def test_sack_disabled():
    net, receiver, collector = _setup(sack=False)
    _deliver(net, receiver, [0, 2])
    assert collector.acks[-1].sack_blocks is None


def test_run_merging_left_and_right():
    net, receiver, collector = _setup()
    _deliver(net, receiver, [0, 2, 4, 3])  # 3 merges runs [2,3) and [4,5)
    assert receiver.sack_runs() == [(2, 5)]
    assert collector.acks[-1].sack_blocks[0] == (2, 5)


def test_first_block_contains_trigger():
    net, receiver, collector = _setup()
    _deliver(net, receiver, [0, 2, 5, 8, 5 + 1])  # trigger 6 extends [5,6)
    last = collector.acks[-1]
    assert last.sack_blocks[0] == (5, 7)


def test_block_count_capped_and_rotates():
    net, receiver, collector = _setup(max_sack_blocks=2)
    # Four separate runs: 2, 4, 6, 8.
    _deliver(net, receiver, [0, 2, 4, 6, 8])
    capped = [a for a in collector.acks if a.sack_blocks is not None]
    assert all(len(a.sack_blocks) <= 2 for a in capped)
    # Rotation: over several dupacks, every run is eventually reported.
    _deliver(net, receiver, [2, 2, 2, 2])  # duplicates re-trigger ACKs
    reported = set()
    for ack in collector.acks:
        for block in ack.sack_blocks or []:
            reported.add(block)
    assert {(2, 3), (4, 5), (6, 7), (8, 9)} <= reported


def test_buffered_count_and_delivered():
    net, receiver, _ = _setup()
    _deliver(net, receiver, [0, 1, 5, 7])
    assert receiver.delivered == 2
    assert receiver.buffered_segments == 2


def test_reordered_arrival_counting():
    net, receiver, _ = _setup()
    _deliver(net, receiver, [0, 3, 1, 2])
    assert receiver.reordered_arrivals == 2  # 1 and 2 arrived below max


def test_ack_packets_are_ignored_by_receiver():
    net, receiver, _ = _setup()
    receiver.receive(Packet("ack", "snd", "rcv", flow_id=1, ack=5))
    assert receiver.total_received == 0


def test_old_duplicate_below_cumulative():
    net, receiver, collector = _setup()
    _deliver(net, receiver, [0, 1, 2, 0])
    assert receiver.duplicates == 1
    assert collector.acks[-1].ack == 3
    assert collector.acks[-1].dsack == (0, 1)


@given(st.permutations(list(range(12))))
def test_property_any_arrival_order_delivers_everything(order):
    net, receiver, _ = _setup()
    for seq in order:
        receiver.receive(Packet("data", "snd", "rcv", flow_id=1, seq=seq))
    assert receiver.rcv_nxt == 12
    assert receiver.buffered_segments == 0
    assert receiver.duplicates == 0


@given(
    st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=60)
)
def test_property_cumulative_matches_contiguous_prefix(seqs):
    net, receiver, _ = _setup()
    for seq in seqs:
        receiver.receive(Packet("data", "snd", "rcv", flow_id=1, seq=seq))
    unique = set(seqs)
    expected = 0
    while expected in unique:
        expected += 1
    assert receiver.rcv_nxt == expected
    # Runs never overlap and never touch (they would have merged).
    runs = receiver.sack_runs()
    for (s1, e1), (s2, e2) in zip(runs, runs[1:]):
        assert e1 < s2

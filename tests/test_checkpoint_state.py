"""StatefulComponent snapshot/restore round trips (property-based).

A checkpoint is only as good as each component's snapshot: anything a
class forgets to capture (or captures but cannot restore) surfaces here
as a round-trip mismatch.  Equality is compared on the *pickled bytes*
of the snapshots — several snapshotted objects (``Packet``, monitors)
define no ``__eq__``, and byte equality is exactly the bit-identicality
contract resume promises.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.app.bulk import BulkTransfer
from repro.checkpoint import StatefulComponent, snapshot_object, restore_object
from repro.checkpoint import codec
from repro.net import packet as packet_mod
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.topologies.dumbbell import DumbbellSpec, build_dumbbell

_SETTINGS = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _scenario(variant, seed, duration):
    net = build_dumbbell(DumbbellSpec(num_pairs=1, seed=seed))
    BulkTransfer(net, variant, "s0", "d0", flow_id=1)
    net.run(until=duration)
    return net


def _stateful_components(sim):
    components = {
        name: comp
        for name, comp in sim.components.items()
        if isinstance(comp, StatefulComponent)
    }
    assert components, "scenario registered no stateful components"
    return components


# ----------------------------------------------------------------------
# Per-component round trips over real figure-style scenarios
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "variant", ["tcp-pr", "tdfr", "newreno", "dsack-nm", "ewma"]
)
@_SETTINGS
@given(seed=st.integers(0, 2**16), duration=st.floats(0.25, 1.5))
def test_snapshot_restore_is_identity(variant, seed, duration):
    sim = _scenario(variant, seed, duration).sim
    for name, comp in sorted(_stateful_components(sim).items()):
        before = comp.snapshot_state()
        comp.restore_state(before)
        after = comp.snapshot_state()
        assert codec.encode(before) == codec.encode(after), name


@pytest.mark.parametrize("variant", ["tcp-pr", "tdfr"])
@_SETTINGS
@given(seed=st.integers(0, 2**16))
def test_restore_rolls_back_later_mutation(variant, seed):
    net = _scenario(variant, seed, duration=0.75)
    sim = net.sim
    components = _stateful_components(sim)
    taken = {
        name: codec.encode(comp.snapshot_state())
        for name, comp in sorted(components.items())
    }
    net.run(until=1.5)  # mutate every component past the snapshot point
    for name, comp in sorted(components.items()):
        comp.restore_state(codec.decode(taken[name]))
        assert codec.encode(comp.snapshot_state()) == taken[name], name


def test_snapshot_excludes_wiring():
    sim = _scenario("tcp-pr", seed=3, duration=0.5).sim
    for name, comp in sorted(_stateful_components(sim).items()):
        state = comp.snapshot_state()
        excluded = getattr(type(comp), "_SNAPSHOT_EXCLUDE", frozenset())
        assert not excluded & set(state), name
        assert "sim" not in state, name


# ----------------------------------------------------------------------
# The generic object walker
# ----------------------------------------------------------------------
class _Slotted:
    __slots__ = ("a", "b")

    def __init__(self):
        self.a = [1, 2]
        self.b = {"k": 3}


def test_snapshot_object_deepcopies():
    obj = _Slotted()
    state = snapshot_object(obj, exclude=frozenset())
    obj.a.append(99)
    assert state["a"] == [1, 2]
    restore_object(obj, state)
    assert obj.a == [1, 2] and obj.b == {"k": 3}


def test_snapshot_object_respects_exclude():
    obj = _Slotted()
    state = snapshot_object(obj, exclude=frozenset({"b"}))
    assert set(state) == {"a"}
    obj.a = None
    restore_object(obj, state)
    assert obj.a == [1, 2] and obj.b == {"k": 3}


# ----------------------------------------------------------------------
# RNG registry streams
# ----------------------------------------------------------------------
@_SETTINGS
@given(seed=st.integers(0, 2**32 - 1), draws=st.integers(0, 40))
def test_rng_registry_roundtrip_replays_identically(seed, draws):
    registry = Simulator(seed=seed).rng
    x, y = registry.stream("x"), registry.stream("y")
    for _ in range(draws):
        x.random()
        y.random()
    snap = registry.snapshot_state()
    expected = [x.random() for _ in range(5)] + [y.random() for _ in range(5)]
    x.random()  # drift further so a no-op restore would be caught
    registry.restore_state(snap)
    x2, y2 = registry.stream("x"), registry.stream("y")
    replayed = [x2.random() for _ in range(5)] + [y2.random() for _ in range(5)]
    assert replayed == expected


def test_rng_registry_restore_drops_unknown_streams():
    registry = Simulator(seed=0).rng
    registry.stream("keep")
    snap = registry.snapshot_state()
    registry.stream("transient")
    registry.restore_state(snap)
    assert sorted(registry.snapshot_state()["streams"]) == ["keep"]


# ----------------------------------------------------------------------
# The packet uid global
# ----------------------------------------------------------------------
@given(n=st.integers(0, 10**9))
@settings(max_examples=20, deadline=None)
def test_uid_counter_peek_and_reset(n):
    before = packet_mod.peek_next_uid()
    try:
        packet_mod.reset_uid_counter(n)
        assert packet_mod.peek_next_uid() == n
        made = Packet("data", src="a", dst="b", flow_id=1, seq=0)
        assert made.uid == n
        assert packet_mod.peek_next_uid() == n + 1
    finally:
        packet_mod.reset_uid_counter(before)


def test_peek_does_not_consume():
    before = packet_mod.peek_next_uid()
    assert packet_mod.peek_next_uid() == before
    assert Packet("data", src="a", dst="b", flow_id=1, seq=0).uid == before

"""Unit tests for the RFC 2988 RTO estimator."""

import pytest
from hypothesis import given, strategies as st

from repro.tcp.rto import RtoEstimator


def test_initial_rto_used_before_samples():
    est = RtoEstimator(initial_rto=3.0)
    assert est.srtt is None
    assert est.rto == 3.0


def test_first_sample_initializes_per_rfc():
    est = RtoEstimator()
    est.on_sample(0.1)
    assert est.srtt == pytest.approx(0.1)
    assert est.rttvar == pytest.approx(0.05)
    # RTO = srtt + 4*rttvar = 0.3, clamped up to min_rto 1.0.
    assert est.rto == pytest.approx(1.0)


def test_smoothing_follows_rfc_gains():
    est = RtoEstimator(min_rto=0.01)
    est.on_sample(0.1)
    est.on_sample(0.2)
    # rttvar = 3/4*0.05 + 1/4*|0.1-0.2| = 0.0625
    # srtt = 7/8*0.1 + 1/8*0.2 = 0.1125
    assert est.rttvar == pytest.approx(0.0625)
    assert est.srtt == pytest.approx(0.1125)
    assert est.rto == pytest.approx(0.1125 + 4 * 0.0625)


def test_min_rto_floor():
    est = RtoEstimator(min_rto=1.0)
    for _ in range(20):
        est.on_sample(0.01)
    assert est.rto == 1.0


def test_backoff_doubles_and_caps():
    est = RtoEstimator(min_rto=1.0, max_rto=8.0)
    est.on_sample(0.1)
    assert est.rto == 1.0
    est.on_timeout()
    assert est.rto == 2.0
    est.on_timeout()
    assert est.rto == 4.0
    est.on_timeout()
    assert est.rto == 8.0
    est.on_timeout()
    assert est.rto == 8.0  # capped


def test_sample_resets_backoff():
    est = RtoEstimator()
    est.on_sample(0.1)
    est.on_timeout()
    est.on_timeout()
    assert est.backoff == 4
    est.on_sample(0.1)
    assert est.backoff == 1


def test_reset_backoff():
    est = RtoEstimator()
    est.on_timeout()
    est.reset_backoff()
    assert est.backoff == 1


def test_negative_sample_rejected():
    est = RtoEstimator()
    with pytest.raises(ValueError):
        est.on_sample(-0.1)


def test_invalid_bounds_rejected():
    with pytest.raises(ValueError):
        RtoEstimator(min_rto=0.0)
    with pytest.raises(ValueError):
        RtoEstimator(min_rto=2.0, max_rto=1.0)


@given(st.lists(st.floats(min_value=1e-4, max_value=5.0), min_size=1, max_size=50))
def test_property_rto_bounded(samples):
    est = RtoEstimator(min_rto=0.2, max_rto=60.0)
    for sample in samples:
        est.on_sample(sample)
        assert 0.2 <= est.rto <= 60.0
        assert est.srtt is not None
        assert min(samples) * 0.5 <= est.srtt <= max(samples) * 1.5

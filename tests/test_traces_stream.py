"""Golden round-trip tests for the ``repro.obs/v1`` trace schema.

The guarantee under test: a trace file parsed by
:class:`~repro.traces.TraceStream` and re-emitted is **bit-identical**
to the original — every record survives verbatim, including record
types the stream does not itself interpret (the schema is append-only,
so unknown types must pass through untouched).
"""

from pathlib import Path

import pytest

from repro.net.network import Network, install_static_routes
from repro.obs.export import (
    header_record,
    read_jsonl,
    trace_event_from_record,
    trace_event_record,
    write_jsonl,
)
from repro.obs.trace import PacketTracer, TraceEvent
from repro.tcp.base import TcpConfig
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sack import SackSender
from repro.traces import FlowKey, TraceStream


def _run_traced_flow(duration=2.0, seed=5):
    """A tiny two-node SACK flow, traced at both endpoints."""
    net = Network(seed=seed)
    net.add_nodes("a", "b")
    net.add_duplex_link("a", "b", bandwidth=4e6, delay=0.01, queue=40)
    install_static_routes(net)
    sender = SackSender(net.sim, net.node("a"), 1, "b", TcpConfig())
    TcpReceiver(net.sim, net.node("b"), 1, "a")
    tracer = PacketTracer()
    tracer.watch_node_sends(net.node("a"))
    tracer.watch_node(net.node("a"))
    tracer.watch_node(net.node("b"))
    tracer.watch_link_drops(net.link("a", "b"))
    sender.start(0.0)
    net.run(until=duration)
    return tracer


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    tracer = _run_traced_flow()
    path = tmp_path_factory.mktemp("traces") / "flow.jsonl"
    records = [trace_event_record(event) for event in tracer.events]
    write_jsonl(records, path, command="test")
    return path


# ----------------------------------------------------------------------
# Bit-identical re-emission
# ----------------------------------------------------------------------
def test_round_trip_is_bit_identical(trace_file, tmp_path):
    original = Path(trace_file).read_bytes()
    stream = TraceStream.from_jsonl(trace_file)
    out = tmp_path / "reemitted.jsonl"
    stream.write(out)
    assert out.read_bytes() == original


def test_double_round_trip_is_stable(trace_file, tmp_path):
    once = tmp_path / "once.jsonl"
    twice = tmp_path / "twice.jsonl"
    TraceStream.from_jsonl(trace_file).write(once)
    TraceStream.from_jsonl(once).write(twice)
    assert twice.read_bytes() == once.read_bytes()


def test_unknown_record_types_pass_through(tmp_path):
    records = [
        header_record(command="test"),
        {"record": "trace", "time": 0.5, "kind": "send", "where": "a",
         "packet_uid": 1, "flow_id": 1, "flow_seq": 0,
         "packet_kind": "data", "seq": 0, "ack": -1,
         "retransmit": False, "path": None},
        {"record": "something_new", "payload": [1, 2, {"k": "v"}]},
        {"record": "metric", "kind": "counter", "name": "x", "value": 3},
    ]
    path = tmp_path / "mixed.jsonl"
    write_jsonl(records, path)
    stream = TraceStream.from_jsonl(path)
    assert len(stream.records) == 4
    assert len(stream.events) == 1
    out = tmp_path / "mixed-out.jsonl"
    stream.write(out)
    assert out.read_bytes() == path.read_bytes()


def test_event_record_field_round_trip():
    event = TraceEvent(
        time=1.25, kind="recv", where="dst", packet_uid=77, flow_id=3,
        flow_seq=12, packet_kind="data", seq=40, ack=-1, retransmit=True,
        path="src>m1>dst",
    )
    assert trace_event_from_record(trace_event_record(event)) == event


def test_reader_tolerates_pre_flow_seq_records():
    """Append-only schema: old records without the new fields parse."""
    old = {"record": "trace", "time": 2.0, "kind": "recv", "where": "b",
           "packet_uid": 5, "flow_id": 1, "packet_kind": "data",
           "seq": 9, "ack": -1}
    event = trace_event_from_record(old)
    assert event.flow_seq == 0
    assert event.retransmit is False
    assert event.path is None


# ----------------------------------------------------------------------
# Flow views and the stable join key
# ----------------------------------------------------------------------
def test_flow_views_split_by_kind(trace_file):
    stream = TraceStream.from_jsonl(trace_file)
    flow = stream.flow(1)
    assert flow.sends, "sender node sends were not traced"
    assert flow.arrivals, "receiver arrivals were not traced"
    assert flow.ack_arrivals, "returning ACKs were not traced"
    assert all(e.kind == "send" and e.packet_kind == "data" for e in flow.sends)
    assert all(e.kind == "recv" and e.packet_kind == "data" for e in flow.arrivals)
    assert all(e.kind == "recv" and e.packet_kind == "ack" for e in flow.ack_arrivals)


def test_flow_seq_is_monotonic_per_flow(trace_file):
    stream = TraceStream.from_jsonl(trace_file)
    seqs = [event.flow_seq for event, _ in stream.events]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)


def test_flow_ordering_survives_record_shuffle(trace_file):
    """The analyzer join must not depend on emission order: shuffling
    the records leaves every flow view identical, because views sort by
    the stable (flow_seq, time) key."""
    records = read_jsonl(trace_file)
    header, body = records[0], records[1:]
    reversed_stream = TraceStream([header] + list(reversed(body)))
    original_stream = TraceStream(records)
    assert reversed_stream.flow(1).sends == original_stream.flow(1).sends
    assert reversed_stream.flow(1).arrivals == original_stream.flow(1).arrivals


def test_cell_tags_keep_sweep_flows_apart():
    base = {"record": "trace", "time": 0.0, "kind": "send", "where": "a",
            "packet_uid": 0, "flow_id": 1, "flow_seq": 0,
            "packet_kind": "data", "seq": 0, "ack": -1,
            "retransmit": False, "path": None}
    records = [dict(base, cell="cell-a"), dict(base, cell="cell-b",
                                               packet_uid=1)]
    stream = TraceStream(records)
    flows = stream.flows()
    assert FlowKey(cell="cell-a", flow_id=1) in flows
    assert FlowKey(cell="cell-b", flow_id=1) in flows
    assert len(flows) == 2

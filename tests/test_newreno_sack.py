"""Behavioural tests for NewReno partial-ACK handling and SACK recovery."""

from repro.net.lossgen import DeterministicLoss
from repro.tcp.base import TcpConfig

from conftest import make_flow


def _multi_loss_flow(variant, ordinals=(30, 32, 34), **kwargs):
    """Drop several packets from (roughly) the same window."""
    return make_flow(variant, data_loss=DeterministicLoss(list(ordinals)), **kwargs)


# ----------------------------------------------------------------------
# NewReno
# ----------------------------------------------------------------------
def test_newreno_survives_multiple_losses_without_timeout():
    flow = _multi_loss_flow("newreno")
    flow.run(until=10.0)
    stats = flow.sender.stats
    assert stats.timeouts == 0
    assert stats.fast_retransmits >= 1
    assert stats.retransmits == 3
    assert flow.delivered > 500


def test_newreno_single_window_cut_for_loss_burst():
    flow = _multi_loss_flow("newreno")
    flow.run(until=10.0)
    # One recovery episode handles the whole burst.
    assert flow.sender.stats.recoveries_entered == 1


def test_newreno_beats_reno_on_multi_loss():
    newreno = _multi_loss_flow("newreno")
    newreno.run(until=10.0)
    reno = _multi_loss_flow("reno")
    reno.run(until=10.0)
    assert newreno.delivered >= reno.delivered
    assert newreno.sender.stats.timeouts <= reno.sender.stats.timeouts


def test_newreno_completes_capped_transfer_with_loss():
    flow = make_flow(
        "newreno",
        data_loss=DeterministicLoss([10, 11]),
        tcp_config=TcpConfig(total_segments=200),
    )
    flow.run(until=30.0)
    assert flow.delivered == 200
    assert flow.sender.done


# ----------------------------------------------------------------------
# SACK
# ----------------------------------------------------------------------
def test_sack_retransmits_only_missing_segments():
    flow = _multi_loss_flow("sack", ordinals=(30, 32, 34, 36))
    flow.run(until=10.0)
    stats = flow.sender.stats
    assert stats.timeouts == 0
    # Exactly the four lost segments are retransmitted, nothing else.
    assert stats.retransmits == 4
    assert flow.receiver.duplicates == 0


def test_sack_single_recovery_for_burst():
    flow = _multi_loss_flow("sack", ordinals=(30, 31, 32, 33, 34))
    flow.run(until=10.0)
    assert flow.sender.stats.recoveries_entered == 1
    assert flow.sender.stats.timeouts == 0


def test_sack_scoreboard_clears_after_recovery():
    flow = _multi_loss_flow("sack")
    flow.run(until=10.0)
    assert flow.sender.scoreboard.sacked_count() == 0
    assert not flow.sender.in_recovery


def test_sack_heavy_loss_recovers_without_timeout():
    # Lose a 20-segment consecutive stretch: the scoreboard retransmits
    # exactly the stretch within one recovery, no RTO needed.
    flow = make_flow("sack", data_loss=DeterministicLoss(range(40, 60)))
    flow.run(until=20.0)
    assert flow.delivered > 1000
    assert flow.sender.stats.timeouts == 0
    assert flow.sender.stats.retransmits == 20
    assert not flow.sender.in_recovery


def test_sack_outperforms_newreno_under_many_losses():
    ordinals = tuple(range(50, 62))  # 12 losses in one window region
    sack = make_flow("sack", data_loss=DeterministicLoss(ordinals))
    sack.run(until=15.0)
    newreno = make_flow("newreno", data_loss=DeterministicLoss(ordinals))
    newreno.run(until=15.0)
    assert sack.delivered >= newreno.delivered


def test_sack_no_loss_equals_newreno_throughput():
    # With a finite initial ssthresh there is no overshoot loss burst, so
    # the two variants behave identically.
    config = TcpConfig(initial_ssthresh=16)
    sack = make_flow("sack", tcp_config=config)
    sack.run(until=5.0)
    newreno = make_flow("newreno", tcp_config=TcpConfig(initial_ssthresh=16))
    newreno.run(until=5.0)
    assert sack.sender.stats.retransmits == 0
    assert newreno.sender.stats.retransmits == 0
    assert abs(sack.delivered - newreno.delivered) <= 2

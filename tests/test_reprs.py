"""Smoke tests for __repr__ output (part of the debugging API)."""

from repro.core.estimator import MaxRttEstimator
from repro.core.pr import TcpPrSender
from repro.net.network import Network, install_static_routes
from repro.net.packet import Packet
from repro.net.queues import REDQueue
from repro.sim import Simulator
from repro.tcp.receiver import TcpReceiver
from repro.tcp.rto import RtoEstimator
from repro.tcp.sack import SackSender
from repro.tcp.scoreboard import Scoreboard


def test_simulator_repr():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    text = repr(sim)
    assert "pending=1" in text


def test_event_handle_repr():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None, label="probe")
    assert "probe" in repr(handle)
    assert "pending" in repr(handle)
    handle.cancel()
    assert "cancelled" in repr(handle)


def test_network_and_node_reprs():
    net = Network()
    net.add_nodes("a", "b")
    net.add_duplex_link("a", "b", bandwidth=1e6, delay=0.01)
    assert "nodes=2" in repr(net)
    assert "a->b" in repr(net.link("a", "b"))
    assert "'b'" in repr(net.node("a"))


def test_red_queue_repr():
    queue = REDQueue(100)
    assert "REDQueue" in repr(queue)


def test_estimator_reprs():
    est = MaxRttEstimator()
    assert "ewrtt=None" in repr(est)
    est.observe(0.1, 2.0)
    assert "0.1000" in repr(est)
    rto = RtoEstimator()
    assert "srtt=None" in repr(rto)


def test_scoreboard_repr():
    sb = Scoreboard()
    sb.record_blocks([(1, 3)], 0)
    assert "sacked=2" in repr(sb)


def test_sender_receiver_reprs():
    net = Network()
    net.add_nodes("a", "b")
    net.add_duplex_link("a", "b", bandwidth=1e6, delay=0.01)
    install_static_routes(net)
    sender = SackSender(net.sim, net.node("a"), 1, "b")
    receiver = TcpReceiver(net.sim, net.node("b"), 1, "a")
    pr = TcpPrSender(net.sim, net.node("a"), 2, "b")
    assert "OPEN" in repr(sender)
    assert "rcv_nxt=0" in repr(receiver)
    assert "mode=slow-start" in repr(pr)

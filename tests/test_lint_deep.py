"""Seeded-mutation tests for the whole-program (``--deep``) passes.

Each test builds a tiny synthetic ``src/repro`` package in ``tmp_path``
(so modules get real ``repro.*`` import names and the artifact
discovery finds ``_cext/`` and ``docs/`` next to it), then asserts the
interprocedural rules fire exactly where a seeded mutation was planted
and stay quiet on the clean baseline.
"""

import json
import textwrap
from pathlib import Path

from repro.lint import run_analysis


def write_tree(tmp_path, files):
    """Write ``{relpath: content}`` under ``tmp_path``; return the
    ``src/repro`` package dir to lint."""
    for rel, content in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content))
    return tmp_path / "src" / "repro"


def deep_findings(pkg, select):
    result = run_analysis(
        [str(pkg)], deep=True, use_cache=False, jobs=1, select=[select]
    )
    assert not result.errors, result.errors
    return result.findings


# ----------------------------------------------------------------------
# REP111/REP112: interprocedural determinism taint
# ----------------------------------------------------------------------
TAINT_HELPERS = """
    import random


    def jitter():
        return random.random()


    def scaled():
        return 2.0 * jitter()
"""

TAINT_SENDER = """
    from repro.tcp.helpers import scaled


    class Sender:
        def __init__(self, sim):
            self.cwnd = scaled()
"""


def test_rep111_two_hops_from_sender_state(tmp_path):
    pkg = write_tree(
        tmp_path,
        {
            "src/repro/tcp/helpers.py": TAINT_HELPERS,
            "src/repro/tcp/sender.py": TAINT_SENDER,
        },
    )
    findings = deep_findings(pkg, "REP111")
    assert len(findings) == 1, [f.format() for f in findings]
    finding = findings[0]
    assert finding.path.endswith("tcp/sender.py")
    assert "self.cwnd" in finding.message
    # The finding carries the full call chain back to the source.
    chain = "\n".join(finding.trace)
    assert "scaled()" in chain
    assert "jitter()" in chain
    assert "helpers.py" in chain


def test_rep111_silent_when_source_is_pragma_blessed(tmp_path):
    blessed = TAINT_HELPERS.replace(
        "return random.random()",
        "return random.random()  "
        "# lint: allow-module-random(fixture: blessed origin)",
    )
    pkg = write_tree(
        tmp_path,
        {
            "src/repro/tcp/helpers.py": blessed,
            "src/repro/tcp/sender.py": TAINT_SENDER,
        },
    )
    assert not deep_findings(pkg, "REP111")


def test_rep111_silent_without_state_write(tmp_path):
    # The same tainted chain returned from a function (not written into
    # component state) is not a REP111.
    pkg = write_tree(
        tmp_path,
        {
            "src/repro/tcp/helpers.py": TAINT_HELPERS,
            "src/repro/tcp/pure_use.py": """
                from repro.tcp.helpers import scaled


                def compute():
                    return scaled()
            """,
        },
    )
    assert not deep_findings(pkg, "REP111")


def test_rep112_tainted_delay_reaches_scheduler(tmp_path):
    pkg = write_tree(
        tmp_path,
        {
            "src/repro/app/timer.py": """
                import random


                def kick(sim, callback):
                    sim.schedule_in(random.random(), callback)
            """,
        },
    )
    findings = deep_findings(pkg, "REP112")
    assert len(findings) == 1, [f.format() for f in findings]
    assert findings[0].path.endswith("app/timer.py")


# ----------------------------------------------------------------------
# REP401: pure <-> C mirror drift
# ----------------------------------------------------------------------
MIRROR_ENGINE = """
    class Simulator:
        __slots__ = ("now", "rng")

        def run(self):
            return self.now

        def step(self):
            return self.rng
"""

MIRROR_C = """\
static PyGetSetDef csim_getsets[] = {
    {"now", (getter)g_now, NULL, NULL, NULL},
    {"rng", (getter)g_rng, NULL, NULL, NULL},
    {NULL, NULL, NULL, NULL, NULL}
};

static PyMethodDef csim_methods[] = {
    {"run", (PyCFunction)c_run, METH_VARARGS, NULL},
    {"step", (PyCFunction)c_step, METH_VARARGS, NULL},
    {NULL, NULL, 0, NULL}
};
"""

MIRROR_MANIFEST = {
    "schema": "repro.lint.mirror/v1",
    "classes": {
        "Simulator": {
            "pure_module": "repro.sim.engine",
            "getset_table": "csim_getsets",
            "method_table": "csim_methods",
            "mirror_attrs": True,
            "delegated_attrs": [],
            "delegated_methods": [],
        }
    },
}


def mirror_tree(tmp_path, c_source=MIRROR_C, engine=MIRROR_ENGINE):
    return write_tree(
        tmp_path,
        {
            "src/repro/sim/engine.py": engine,
            "src/repro/_cext/_coremodule.c": c_source,
            "src/repro/_cext/mirror_manifest.json": json.dumps(
                MIRROR_MANIFEST
            ),
        },
    )


def test_rep401_clean_when_tables_match(tmp_path):
    pkg = mirror_tree(tmp_path)
    assert not deep_findings(pkg, "REP401")


def test_rep401_deleted_getset_fires(tmp_path):
    mutated = MIRROR_C.replace(
        '    {"rng", (getter)g_rng, NULL, NULL, NULL},\n', ""
    )
    assert mutated != MIRROR_C
    pkg = mirror_tree(tmp_path, c_source=mutated)
    findings = deep_findings(pkg, "REP401")
    assert len(findings) == 1, [f.format() for f in findings]
    finding = findings[0]
    # Attributed to the pure class, where the fix (or delegation) goes.
    assert finding.path.endswith("sim/engine.py")
    assert "'rng'" in finding.message


def test_rep401_stale_c_method_fires(tmp_path):
    mutated = MIRROR_C.replace(
        "    {NULL, NULL, 0, NULL}",
        '    {"ghost", (PyCFunction)c_ghost, METH_VARARGS, NULL},\n'
        "    {NULL, NULL, 0, NULL}",
    )
    pkg = mirror_tree(tmp_path, c_source=mutated)
    findings = deep_findings(pkg, "REP401")
    assert len(findings) == 1, [f.format() for f in findings]
    assert "'ghost'" in findings[0].message


def test_rep401_unmirrored_pure_method_fires(tmp_path):
    grown = MIRROR_ENGINE.replace(
        "        def step(self):\n            return self.rng\n",
        "        def step(self):\n            return self.rng\n\n"
        "        def drain(self):\n            return None\n",
    )
    pkg = mirror_tree(tmp_path, engine=grown)
    findings = deep_findings(pkg, "REP401")
    assert len(findings) == 1, [f.format() for f in findings]
    assert "'drain'" in findings[0].message


# ----------------------------------------------------------------------
# REP402: wiring attributes vs _SNAPSHOT_EXCLUDE
# ----------------------------------------------------------------------
def test_rep402_unexcluded_wiring_attr_fires(tmp_path):
    pkg = write_tree(
        tmp_path,
        {
            "src/repro/tcp/agent.py": """
                class Agent:
                    _SNAPSHOT_EXCLUDE = frozenset({"sim"})

                    def __init__(self, sim, peer):
                        self.sim = sim
                        self.peer = peer
                        self.extra = sim
            """,
        },
    )
    findings = deep_findings(pkg, "REP402")
    assert len(findings) == 1, [f.format() for f in findings]
    finding = findings[0]
    assert "'self.extra'" in finding.message
    assert "_SNAPSHOT_EXCLUDE" in finding.message


def test_rep402_clean_when_excluded(tmp_path):
    pkg = write_tree(
        tmp_path,
        {
            "src/repro/tcp/agent.py": """
                class Agent:
                    _SNAPSHOT_EXCLUDE = frozenset({"sim", "extra"})

                    def __init__(self, sim, peer):
                        self.sim = sim
                        self.peer = peer
                        self.extra = sim
            """,
        },
    )
    assert not deep_findings(pkg, "REP402")


def test_rep402_stale_exclude_entry_fires(tmp_path):
    pkg = write_tree(
        tmp_path,
        {
            "src/repro/tcp/agent.py": """
                class Agent:
                    _SNAPSHOT_EXCLUDE = frozenset({"sim", "ghost"})

                    def __init__(self, sim):
                        self.sim = sim
            """,
        },
    )
    findings = deep_findings(pkg, "REP402")
    assert len(findings) == 1, [f.format() for f in findings]
    assert "'ghost'" in findings[0].message
    assert "stale" in findings[0].message


# ----------------------------------------------------------------------
# REP403: emitted record kinds/fields vs docs/OBSERVABILITY.md
# ----------------------------------------------------------------------
OBS_DOC = """\
# Observability

| `record` | Fields |
|---|---|
| `metric` | `kind`, `value` |
"""


def obs_tree(tmp_path, emit_body):
    return write_tree(
        tmp_path,
        {
            "docs/OBSERVABILITY.md": OBS_DOC,
            "src/repro/obs/emit.py": emit_body,
        },
    )


def test_rep403_clean_when_documented(tmp_path):
    pkg = obs_tree(
        tmp_path,
        """
        def emit(sink, value):
            sink.write({"record": "metric", "kind": "counter", "value": value})
        """,
    )
    assert not deep_findings(pkg, "REP403")


def test_rep403_undocumented_kind_fires(tmp_path):
    pkg = obs_tree(
        tmp_path,
        """
        def emit(sink):
            sink.write({"record": "mystery", "value": 1})
        """,
    )
    findings = deep_findings(pkg, "REP403")
    assert len(findings) == 1, [f.format() for f in findings]
    assert "'mystery'" in findings[0].message


def test_rep403_undocumented_field_fires(tmp_path):
    pkg = obs_tree(
        tmp_path,
        """
        def emit(sink, value):
            sink.write({"record": "metric", "kind": "c", "bogus": value})
        """,
    )
    findings = deep_findings(pkg, "REP403")
    assert len(findings) == 1, [f.format() for f in findings]
    assert "bogus" in findings[0].message


def test_rep403_out_of_scope_module_is_ignored(tmp_path):
    # Record-shaped dicts outside the exporting packages (a test helper,
    # an analysis consumer) are not schema emission sites.
    pkg = write_tree(
        tmp_path,
        {
            "docs/OBSERVABILITY.md": OBS_DOC,
            "src/repro/core/consumer.py": """
                def fake_record():
                    return {"record": "mystery", "value": 1}
            """,
        },
    )
    assert not deep_findings(pkg, "REP403")

"""Regression tests for the runner's nested-safe SIGALRM guard.

The test suite itself arms a per-test SIGALRM deadline (see
``conftest.py``), so ``_alarm`` *always* runs nested here — exactly the
scenario that used to clobber the outer handler and silently cancel the
outer interval timer.  These tests pin the repaired contract: the
previous handler is restored on every exit path, and a pending outer
itimer is re-armed with its remaining time.
"""

import signal
import time

import pytest

from repro.exec.runner import CellTimeout, _alarm

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGALRM"), reason="platform lacks SIGALRM"
)


class _OuterDeadline(Exception):
    pass


def _sentinel_handler(signum, frame):
    raise _OuterDeadline("outer timer fired")


@pytest.fixture
def outer_alarm():
    """Install a recognisable outer handler + itimer, restore after."""
    previous_handler = signal.signal(signal.SIGALRM, _sentinel_handler)
    previous_delay, _ = signal.setitimer(signal.ITIMER_REAL, 60.0)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous_handler)
        if previous_delay:
            signal.setitimer(signal.ITIMER_REAL, previous_delay)


def test_alarm_fires_and_restores_handler(outer_alarm):
    with pytest.raises(CellTimeout):
        with _alarm(0.05):
            time.sleep(5)  # lint: allow-wallclock(the alarm must interrupt a real stall)
    assert signal.getsignal(signal.SIGALRM) is _sentinel_handler


def test_alarm_rearms_outer_itimer_on_clean_exit(outer_alarm):
    with _alarm(30.0):
        # While the inner alarm is armed, the itimer belongs to it.
        delay, _ = signal.getitimer(signal.ITIMER_REAL)
        assert 0 < delay <= 30.0
    delay, _ = signal.getitimer(signal.ITIMER_REAL)
    # The outer 60 s timer is back, minus the time we borrowed it for.
    assert 50.0 < delay <= 60.0
    assert signal.getsignal(signal.SIGALRM) is _sentinel_handler


def test_alarm_rearms_outer_itimer_after_timeout(outer_alarm):
    with pytest.raises(CellTimeout):
        with _alarm(0.05):
            time.sleep(5)  # lint: allow-wallclock(the alarm must interrupt a real stall)
    delay, _ = signal.getitimer(signal.ITIMER_REAL)
    assert 50.0 < delay <= 60.0


def test_alarm_rearms_outer_itimer_after_body_exception(outer_alarm):
    with pytest.raises(ValueError):
        with _alarm(30.0):
            raise ValueError("cell crashed")
    delay, _ = signal.getitimer(signal.ITIMER_REAL)
    assert 50.0 < delay <= 60.0
    assert signal.getsignal(signal.SIGALRM) is _sentinel_handler


def test_alarm_nested_inner_does_not_cancel_outer():
    # Two _alarm levels: the inner one exits cleanly, the outer must
    # still fire afterwards.
    with pytest.raises(CellTimeout):
        with _alarm(0.4):
            with _alarm(0.1):
                pass  # inner finishes instantly
            delay, _ = signal.getitimer(signal.ITIMER_REAL)
            assert delay > 0, "inner exit disarmed the outer alarm"
            time.sleep(5)  # lint: allow-wallclock(waiting for the re-armed outer alarm)


def test_alarm_expired_outer_rearms_minimally(outer_alarm):
    # If the outer timer's remaining budget is exhausted while the
    # inner alarm held the itimer, the outer must be re-armed with a
    # tiny positive delay (zero would disarm it), so it still fires.
    signal.setitimer(signal.ITIMER_REAL, 0.15)
    with pytest.raises(_OuterDeadline):
        with _alarm(30.0):
            time.sleep(0.3)  # lint: allow-wallclock(outlive the outer timer's budget on purpose)
        # exiting re-arms the outer timer with ~1 µs; it fires at once


def test_alarm_none_is_a_noop(outer_alarm):
    with _alarm(None):
        delay, _ = signal.getitimer(signal.ITIMER_REAL)
        assert 0 < delay <= 60.0  # outer timer untouched
    assert signal.getsignal(signal.SIGALRM) is _sentinel_handler

"""Unit tests for nodes, forwarding, and the Network container."""

import pytest

from repro.net.network import Network, install_static_routes
from repro.net.node import Agent
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.sim.errors import SimulationError


class RecordingAgent(Agent):
    def __init__(self, sim, node, flow_id):
        super().__init__(sim, node, flow_id)
        self.packets = []

    def receive(self, packet):
        self.packets.append(packet)


def _line_network():
    """a - b - c with static routes installed."""
    net = Network(seed=0)
    net.add_nodes("a", "b", "c")
    net.add_duplex_link("a", "b", bandwidth=1e7, delay=0.001)
    net.add_duplex_link("b", "c", bandwidth=1e7, delay=0.001)
    install_static_routes(net)
    return net


def test_multi_hop_forwarding():
    net = _line_network()
    agent = RecordingAgent(net.sim, net.node("c"), 1)
    packet = Packet("data", "a", "c", flow_id=1, seq=0)
    net.sim.schedule(0.0, lambda: net.node("a").send(packet))
    net.run(until=1.0)
    assert [p.seq for p in agent.packets] == [0]
    assert agent.packets[0].hops == 2


def test_local_delivery_by_flow_id():
    net = _line_network()
    agent1 = RecordingAgent(net.sim, net.node("c"), 1)
    agent2 = RecordingAgent(net.sim, net.node("c"), 2)
    for flow in (1, 2, 2):
        packet = Packet("data", "a", "c", flow_id=flow)
        net.sim.schedule(0.0, (lambda p: lambda: net.node("a").send(p))(packet))
    net.run(until=1.0)
    assert len(agent1.packets) == 1
    assert len(agent2.packets) == 2


def test_dead_letter_on_missing_agent():
    net = _line_network()
    packet = Packet("data", "a", "c", flow_id=99)
    net.sim.schedule(0.0, lambda: net.node("a").send(packet))
    net.run(until=1.0)
    assert net.node("c").dead_letters == 1
    assert net.dead_letters() == 1


def test_dead_letter_on_missing_route():
    net = Network(seed=0)
    net.add_nodes("a", "b")
    net.add_duplex_link("a", "b", bandwidth=1e6, delay=0.001)
    # No routes installed: sending to an unknown destination dead-letters.
    packet = Packet("data", "a", "zzz", flow_id=1)
    net.sim.schedule(0.0, lambda: net.node("a").send(packet))
    net.run(until=1.0)
    assert net.node("a").dead_letters == 1


def test_source_route_forwarding():
    net = Network(seed=0)
    net.add_nodes("a", "b", "c", "d")
    net.add_duplex_link("a", "b", bandwidth=1e7, delay=0.001)
    net.add_duplex_link("b", "d", bandwidth=1e7, delay=0.001)
    net.add_duplex_link("a", "c", bandwidth=1e7, delay=0.001)
    net.add_duplex_link("c", "d", bandwidth=1e7, delay=0.001)
    agent = RecordingAgent(net.sim, net.node("d"), 1)
    # No static routes at all: the source route is the only guidance.
    packet = Packet("data", "a", "d", flow_id=1)
    packet.route = ["a", "c", "d"]
    net.sim.schedule(0.0, lambda: net.node("a").send(packet))
    net.run(until=1.0)
    assert len(agent.packets) == 1
    assert net.link("a", "c").tx_packets == 1
    assert net.link("a", "b").tx_packets == 0


def test_duplicate_node_name_rejected():
    net = Network()
    net.add_node("a")
    with pytest.raises(SimulationError):
        net.add_node("a")


def test_unknown_node_lookup_raises():
    net = Network()
    with pytest.raises(SimulationError):
        net.node("missing")
    with pytest.raises(SimulationError):
        net.link("x", "y")


def test_duplicate_agent_rejected():
    net = Network()
    net.add_node("a")
    RecordingAgent(net.sim, net.node("a"), 1)
    with pytest.raises(SimulationError):
        RecordingAgent(net.sim, net.node("a"), 1)


def test_add_route_requires_existing_link():
    net = Network()
    net.add_nodes("a", "b")
    with pytest.raises(SimulationError):
        net.node("a").add_route("b", "b")


def test_duplex_rejects_shared_queue_instance():
    net = Network()
    net.add_nodes("a", "b")
    with pytest.raises(SimulationError):
        net.add_duplex_link("a", "b", 1e6, 0.001, queue=DropTailQueue(5))


def test_graph_carries_link_attributes():
    net = _line_network()
    graph = net.graph()
    assert graph.number_of_edges() == 4
    assert graph.edges["a", "b"]["delay"] == pytest.approx(0.001)
    assert graph.edges["a", "b"]["bandwidth"] == pytest.approx(1e7)


def test_install_static_routes_prefers_low_delay():
    net = Network(seed=0)
    net.add_nodes("a", "b", "c")
    net.add_duplex_link("a", "c", bandwidth=1e6, delay=0.500)  # slow direct
    net.add_duplex_link("a", "b", bandwidth=1e6, delay=0.001)
    net.add_duplex_link("b", "c", bandwidth=1e6, delay=0.001)
    install_static_routes(net)
    assert net.node("a").routes["c"] == "b"


def test_add_duplex_chain():
    net = Network(seed=0)
    pairs = net.add_duplex_chain(["a", "b", "c", "d"], bandwidth=1e6, delay=0.01)
    assert len(pairs) == 3
    assert set(net.nodes) == {"a", "b", "c", "d"}
    assert net.link("b", "c").bandwidth == 1e6
    assert net.link("c", "b").delay == 0.01


def test_add_duplex_chain_requires_two_nodes():
    net = Network(seed=0)
    with pytest.raises(SimulationError):
        net.add_duplex_chain(["solo"], bandwidth=1e6, delay=0.01)


def test_total_drops_aggregates_links():
    net = Network(seed=0)
    net.add_nodes("a", "b")
    link = net.add_link("a", "b", bandwidth=1e3, delay=0.001, queue=1)

    def burst():
        for i in range(5):
            link.enqueue(Packet("data", "a", "b", flow_id=1, seq=i))

    net.sim.schedule(0.0, burst)
    net.run(until=0.001)
    assert net.total_drops() == link.queue.drops > 0

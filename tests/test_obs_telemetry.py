"""Tests for sweep telemetry (repro.exec.telemetry): per-cell execution
stories plus worker-side metric collection across the process boundary."""

import pytest

from repro.exec.cache import ResultCache
from repro.exec.runner import ParallelRunner, run_sweep
from repro.exec.spec import SweepCell
from repro.exec.telemetry import (
    CellTelemetry,
    SweepTelemetry,
    summaries_from_records,
)
from repro.exec.testing import BOOM_CELL, METRIC_CELL

from test_exec_runner import _tiny_fig6_spec

pytestmark = pytest.mark.faults


def _metric(key, value=1.0, seed=0):
    return SweepCell(key=key, func=METRIC_CELL, params={"value": value}, seed=seed)


def _boom(key):
    return SweepCell(key=key, func=BOOM_CELL, params={})


# ----------------------------------------------------------------------
# Collection plumbing: worker metrics cross the process boundary
# ----------------------------------------------------------------------
@pytest.mark.parametrize("jobs", [1, 2])
def test_collected_metrics_are_tagged_with_their_cell(jobs):
    runner = ParallelRunner(jobs=jobs, collect_metrics=True)
    runner.run_cells([_metric("a", value=2.0), _metric("b", value=5.0)])
    telemetry = runner.last_stats.telemetry
    metrics = [r for r in telemetry.collected if r["record"] == "metric"]
    assert {r["cell"] for r in metrics} == {"a", "b"}
    by_cell = {r["cell"]: r for r in metrics}
    assert by_cell["a"]["name"] == "test.cell_value"
    assert by_cell["a"]["value"] == 2.0
    assert by_cell["b"]["value"] == 5.0


def test_no_collection_means_no_records_and_empty_cell_metrics():
    runner = ParallelRunner(collect_metrics=False)
    runner.run_cells([_metric("a")])
    telemetry = runner.last_stats.telemetry
    assert telemetry is not None  # telemetry itself is always populated
    assert telemetry.collected == []
    assert telemetry.cell("a").metrics == {}


def test_cell_telemetry_carries_metric_summaries():
    runner = ParallelRunner(collect_metrics=True)
    runner.run_cells([_metric("a", value=3.0)])
    cell = runner.last_stats.telemetry.cell("a")
    assert cell.cached is False
    assert cell.attempts == 1
    assert cell.error is None
    assert cell.metrics["test.cell_value{seed=0}"] == {
        "kind": "counter",
        "value": 3.0,
    }


def test_collection_does_not_change_sweep_results():
    spec = _tiny_fig6_spec(seed=5)
    plain = run_sweep(spec, jobs=2)
    collected = run_sweep(spec, jobs=2, collect_metrics=True, collect_trace=True)
    assert plain == collected


# ----------------------------------------------------------------------
# Cache and failure interplay
# ----------------------------------------------------------------------
def test_cached_cells_report_cached_with_no_fresh_metrics(tmp_path):
    cache = ResultCache(tmp_path)
    ParallelRunner(cache=cache, collect_metrics=True).run_cells([_metric("a")])
    runner = ParallelRunner(cache=cache, collect_metrics=True)
    runner.run_cells([_metric("a")])
    telemetry = runner.last_stats.telemetry
    cell = telemetry.cell("a")
    assert cell.cached is True
    assert cell.attempts == 0
    assert cell.metrics == {}
    assert telemetry.collected == []  # nothing executed, nothing gathered
    assert telemetry.cached == 1 and telemetry.executed == 0


def test_keep_going_telemetry_reports_failures_alongside_metrics():
    runner = ParallelRunner(keep_going=True, collect_metrics=True)
    runner.run_cells([_metric("a"), _boom("b"), _metric("c")])
    telemetry = runner.last_stats.telemetry
    assert telemetry.total == 3
    assert telemetry.failed == 1
    assert telemetry.executed == 3  # executed counts the failed attempt too
    failed = telemetry.cell("b")
    assert failed.error.startswith("ValueError")
    assert failed.timed_out is False
    assert failed.metrics == {}
    # The healthy cells still delivered their metrics.
    cells_with_metrics = {r["cell"] for r in telemetry.collected}
    assert cells_with_metrics == {"a", "c"}


# ----------------------------------------------------------------------
# Record streams
# ----------------------------------------------------------------------
def test_metric_records_composition():
    runner = ParallelRunner(collect_metrics=True)
    runner.run_cells([_metric("a")])
    records = runner.last_stats.telemetry.metric_records()
    kinds = [r["record"] for r in records]
    assert kinds == ["metric", "cell", "sweep"]
    sweep = records[-1]
    assert sweep["total"] == 1 and sweep["executed"] == 1
    assert records[1]["key"] == "a"


def test_trace_records_filter():
    telemetry = SweepTelemetry(
        collected=[
            {"record": "metric", "name": "x"},
            {"record": "trace", "kind": "enqueue"},
            {"record": "fault", "kind": "link-down"},
        ]
    )
    assert [r["record"] for r in telemetry.trace_records()] == ["trace", "fault"]


def test_cell_lookup_and_record_shape():
    cell = CellTelemetry(
        key=("tcp-pr", 0.0),
        cached=False,
        attempts=2,
        timed_out=False,
        error=None,
        wall_time=1.5,
    )
    telemetry = SweepTelemetry(cells=[cell])
    assert telemetry.cell(("tcp-pr", 0.0)) is cell
    assert telemetry.cell("missing") is None
    record = cell.to_record()
    assert record["record"] == "cell"
    assert record["key"] == '["tcp-pr", 0.0]'
    assert record["attempts"] == 2


# ----------------------------------------------------------------------
# summaries_from_records
# ----------------------------------------------------------------------
def test_summaries_from_records_each_kind():
    records = [
        {"record": "header"},  # ignored
        {"record": "metric", "kind": "counter", "name": "c",
         "labels": {"link": "l"}, "value": 3.0},
        {"record": "metric", "kind": "gauge", "name": "g", "labels": {},
         "value": 7.0},
        {"record": "metric", "kind": "histogram", "name": "h", "labels": {},
         "count": 2, "sum": 6.0, "min": 1.0, "max": 5.0},
        {"record": "metric", "kind": "timeseries", "name": "t",
         "labels": {"flow": 1}, "times": [0.0, 1.0], "values": [2.0, 4.0]},
    ]
    summaries = summaries_from_records(records)
    assert summaries["c{link=l}"] == {"kind": "counter", "value": 3.0}
    assert summaries["g{}"] == {"kind": "gauge", "value": 7.0}
    assert summaries["h{}"] == {
        "kind": "histogram", "count": 2, "mean": 3.0, "min": 1.0, "max": 5.0,
    }
    assert summaries["t{flow=1}"] == {
        "kind": "timeseries", "n": 2, "last": 4.0, "min": 2.0, "max": 4.0,
    }

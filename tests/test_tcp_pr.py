"""Behavioural tests for TCP-PR (Section 3 of the paper)."""

import pytest

from repro.core.pr import CONG_AVOID, SLOW_START, PrConfig
from repro.net.lossgen import BernoulliLoss, DeterministicLoss
from repro.net.network import Network, install_static_routes
from repro.routing.multipath import EpsilonMultipathPolicy
from repro.tcp.receiver import TcpReceiver
from repro.core import TcpPrSender

from conftest import make_flow


def make_reordering_flow(pr_config=None, seed=0, paths=2, bandwidth=1e7):
    """A TCP-PR flow over two disjoint paths with ε=0 routing.

    The paths have different propagation delays, so per-packet random
    path choice persistently reorders both data and ACKs — the paper's
    core scenario — without any packet loss (queues are deep).
    """
    net = Network(seed=seed)
    net.add_nodes("snd", "rcv")
    for k in range(paths):
        mids = [f"p{k}m{i}" for i in range(k + 1)]
        for m in mids:
            net.add_node(m)
        chain = ["snd", *mids, "rcv"]
        for u, v in zip(chain, chain[1:]):
            net.add_duplex_link(u, v, bandwidth=bandwidth, delay=0.01, queue=10_000)
    install_static_routes(net)
    EpsilonMultipathPolicy(net, "snd", epsilon=0.0, destinations=["rcv"]).install()
    EpsilonMultipathPolicy(net, "rcv", epsilon=0.0, destinations=["snd"]).install()
    sender = TcpPrSender(net.sim, net.node("snd"), 1, "rcv", pr_config)
    receiver = TcpReceiver(net.sim, net.node("rcv"), 1, "snd")
    sender.start(0.0)
    return net, sender, receiver


# ----------------------------------------------------------------------
# Basics
# ----------------------------------------------------------------------
def test_bulk_transfer_completes():
    flow = make_flow("tcp-pr", pr_config=PrConfig(total_segments=50))
    flow.run(until=10.0)
    assert flow.delivered == 50
    assert flow.sender.done


def test_no_loss_no_retransmits_and_no_cuts():
    flow = make_flow("tcp-pr", pr_config=PrConfig(initial_ssthresh=32))
    flow.run(until=10.0)
    stats = flow.sender.stats
    assert stats.retransmits == 0
    assert stats.window_cuts == 0
    assert stats.drops_detected == 0
    # 1 Mbps = 125 seg/s; expect near-full utilization.
    assert flow.delivered >= 0.85 * 125 * 10


def test_slow_start_then_congestion_avoidance():
    flow = make_flow(
        "tcp-pr", bandwidth=1e8, delay=0.05, pr_config=PrConfig(initial_ssthresh=8)
    )
    flow.run(until=1.0)
    sender = flow.sender
    assert sender.mode == CONG_AVOID
    assert sender.cwnd >= 8.0
    # CA growth is ~1/RTT: far below doubling.
    assert sender.cwnd < 30.0


def test_starts_in_slow_start_with_infinite_ssthr():
    flow = make_flow("tcp-pr")
    assert flow.sender.mode == SLOW_START
    assert flow.sender.ssthr == float("inf")
    assert flow.sender.cwnd == 1.0


def test_mxrtt_tracks_beta_times_ewrtt():
    flow = make_flow("tcp-pr", pr_config=PrConfig(beta=3.0, initial_ssthresh=16))
    flow.run(until=5.0)
    sender = flow.sender
    assert sender.ewrtt is not None
    assert sender.mxrtt == pytest.approx(3.0 * sender.ewrtt)
    # ewrtt upper-bounds the no-queue RTT (28 ms on this link).
    assert sender.ewrtt >= 0.027


def test_flight_never_exceeds_window():
    flow = make_flow("tcp-pr", pr_config=PrConfig(initial_ssthresh=16))
    flow.run(until=3.0)
    sender = flow.sender
    # flush-cwnd sends while cwnd > |to-be-ack|, so at rest the flight is
    # at most cwnd (the last send can push it to ceil(cwnd)).
    assert len(sender.to_be_ack) <= sender.cwnd + 1


# ----------------------------------------------------------------------
# Timer-based loss detection
# ----------------------------------------------------------------------
def test_single_loss_detected_and_window_halved_once():
    flow = make_flow(
        "tcp-pr",
        data_loss=DeterministicLoss([40]),
        pr_config=PrConfig(initial_ssthresh=16),
    )
    flow.run(until=10.0)
    stats = flow.sender.stats
    assert stats.drops_detected == 1
    assert stats.retransmits == 1
    assert stats.window_cuts == 1
    assert stats.extreme_events == 0
    assert flow.delivered > 800  # flow kept running


def test_detection_latency_is_roughly_mxrtt():
    """The drop of a packet is declared no earlier than mxrtt after its
    send, and not much later."""
    pr_config = PrConfig(beta=3.0, initial_ssthresh=16)
    flow = make_flow("tcp-pr", data_loss=DeterministicLoss([40]), pr_config=pr_config)
    sender = flow.sender

    detection_times = []
    original = sender._declare_drop

    def spy(seq):
        detection_times.append((flow.network.sim.now, seq, sender.to_be_ack[seq][0]))
        original(seq)

    sender._declare_drop = spy
    flow.run(until=10.0)
    assert len(detection_times) == 1
    detected_at, _seq, sent_at = detection_times[0]
    elapsed = detected_at - sent_at
    # At least mxrtt (at arming time) and at most ~2 mxrtt after sending.
    assert elapsed >= 3.0 * 0.028 * 0.9
    assert elapsed < 2.0


def test_burst_of_losses_cuts_window_once():
    """The memorize list ensures one cut per loss event (like NewReno)."""
    flow = make_flow(
        "tcp-pr",
        data_loss=DeterministicLoss([40, 41, 42]),
        pr_config=PrConfig(initial_ssthresh=20),
    )
    flow.run(until=10.0)
    stats = flow.sender.stats
    assert stats.drops_detected == 3
    assert stats.window_cuts == 1
    assert stats.memorize_drops == 2


def test_memorize_disabled_cuts_per_drop():
    flow = make_flow(
        "tcp-pr",
        data_loss=DeterministicLoss([40, 41, 42]),
        pr_config=PrConfig(initial_ssthresh=20, enable_memorize=False),
    )
    flow.run(until=10.0)
    assert flow.sender.stats.window_cuts == 3


def test_halving_uses_cwnd_at_send_time():
    """cwnd(n)/2 halving: the cut lands at half the window recorded when
    the lost packet was sent, regardless of growth since."""
    flow = make_flow(
        "tcp-pr",
        data_loss=DeterministicLoss([40]),
        pr_config=PrConfig(initial_ssthresh=16),
    )
    sender = flow.sender
    cuts = []
    original = sender._new_drop

    def spy(seq, cwnd_at_send):
        before = sender.cwnd
        original(seq, cwnd_at_send)
        cuts.append((before, cwnd_at_send, sender.cwnd))

    sender._new_drop = spy
    flow.run(until=10.0)
    assert len(cuts) == 1
    _before, at_send, after = cuts[0]
    assert after == pytest.approx(max(at_send / 2.0, 1.0))


def test_ack_loss_robustness():
    """TCP-PR must not misbehave under heavy ACK loss (Section 3: it does
    not distinguish data losses from ACK losses)."""
    import random

    flow = make_flow(
        "tcp-pr",
        ack_loss=BernoulliLoss(0.3, random.Random(5)),  # lint: allow-module-random(fixed-seed fixture stream; the literal seed keeps the test deterministic)
        pr_config=PrConfig(initial_ssthresh=16),
    )
    flow.run(until=10.0)
    assert flow.delivered >= 0.7 * 125 * 10
    # ACK loss alone causes no (or almost no) spurious window cuts.
    assert flow.sender.stats.window_cuts <= 2


# ----------------------------------------------------------------------
# Reordering robustness (the headline property)
# ----------------------------------------------------------------------
def test_no_window_cuts_under_pure_reordering():
    net, sender, receiver = make_reordering_flow(
        pr_config=PrConfig(initial_ssthresh=64)
    )
    net.run(until=10.0)
    assert receiver.reordered_arrivals > 50, "scenario must actually reorder"
    assert sender.stats.window_cuts == 0
    assert sender.stats.extreme_events == 0
    assert sender.stats.retransmits == 0


def test_throughput_high_under_reordering():
    net, sender, receiver = make_reordering_flow(
        pr_config=PrConfig(initial_ssthresh=64)
    )
    net.run(until=10.0)
    # Two 10 Mbps paths used 50/50: aggregate capacity 20 Mbps = 2500 seg/s.
    assert receiver.delivered >= 0.6 * 2500 * 10


def test_small_beta_causes_spurious_detections_but_no_deadlock():
    """beta=1 makes mxrtt == ewrtt: reordered stragglers get declared
    dropped spuriously and throughput suffers badly (Figure 4's beta=1
    regime), but the sender must keep making progress."""
    net, sender, receiver = make_reordering_flow(
        pr_config=PrConfig(beta=1.0, initial_ssthresh=64)
    )
    net.run(until=10.0)
    assert sender.stats.drops_detected > 0
    assert sender.stats.window_cuts > 0, "spurious drops must cut the window"
    assert receiver.delivered > 100  # degraded, but no deadlock
    healthy = make_reordering_flow(pr_config=PrConfig(beta=3.0, initial_ssthresh=64))
    healthy[0].run(until=10.0)
    assert healthy[2].delivered > 3 * receiver.delivered


def test_pure_cumulative_ablation_degrades():
    """With use_sack_accounting=False (the literal pseudo-code against a
    cumulative-only receiver), a single loss makes the timers of every
    packet above the hole expire too: a storm of spurious drop
    declarations that costs real throughput (most of the redundant
    retransmissions are cancelled in time, but the window collapses)."""
    kwargs = dict(data_loss=DeterministicLoss([40]), bandwidth=1e7, queue=25)
    pure = make_flow(
        "tcp-pr",
        pr_config=PrConfig(initial_ssthresh=64, use_sack_accounting=False),
        **kwargs,
    )
    pure.run(until=10.0)
    sacked = make_flow(
        "tcp-pr", pr_config=PrConfig(initial_ssthresh=64), **kwargs
    )
    sacked.run(until=10.0)
    # The cascade multiplies detections well beyond the real loss count
    # (the shallow queue also causes some genuine sawtooth losses, which
    # both flows see alike).
    assert pure.sender.stats.drops_detected > 3 * sacked.sender.stats.drops_detected
    assert pure.sender.stats.spurious_drops > 0
    assert sacked.sender.stats.spurious_drops == 0
    assert pure.delivered < 0.8 * sacked.delivered


# ----------------------------------------------------------------------
# Extreme losses (Section 3.2)
# ----------------------------------------------------------------------
def test_blackout_triggers_extreme_loss_and_backoff():
    flow = make_flow(
        "tcp-pr",
        data_loss=DeterministicLoss(range(30, 3000)),
        pr_config=PrConfig(initial_ssthresh=32),
    )
    flow.run(until=20.0)
    stats = flow.sender.stats
    assert stats.extreme_events >= 1
    assert stats.backoff_doublings >= 1
    assert flow.sender.cwnd == 1.0
    assert flow.sender.mode == SLOW_START


def test_extreme_loss_inflates_mxrtt_to_at_least_one_second():
    flow = make_flow(
        "tcp-pr",
        data_loss=DeterministicLoss(range(30, 3000)),
        pr_config=PrConfig(initial_ssthresh=32),
    )
    sender = flow.sender
    observed = []
    original = sender._extreme_loss

    def spy():
        original()
        observed.append(sender.mxrtt)

    sender._extreme_loss = spy
    flow.run(until=20.0)
    assert observed, "extreme loss must have triggered"
    assert observed[0] >= 1.0


def test_recovery_after_blackout():
    flow = make_flow(
        "tcp-pr",
        data_loss=DeterministicLoss(range(30, 45)),
        pr_config=PrConfig(initial_ssthresh=32),
    )
    flow.run(until=30.0)
    assert flow.delivered > 500
    assert flow.sender.stats.drops_detected >= 10


def test_extreme_disabled_by_config():
    flow = make_flow(
        "tcp-pr",
        data_loss=DeterministicLoss(range(30, 300)),
        pr_config=PrConfig(initial_ssthresh=32, extreme_loss_enabled=False),
    )
    flow.run(until=20.0)
    assert flow.sender.stats.extreme_events == 0


# ----------------------------------------------------------------------
# Spurious-drop cancellation
# ----------------------------------------------------------------------
def test_sack_cancels_pending_retransmissions():
    """A straggler declared dropped but then SACKed must not be resent
    (if the SACK arrives before the retransmission goes out)."""
    net, sender, receiver = make_reordering_flow(
        pr_config=PrConfig(beta=1.0, initial_ssthresh=64)
    )
    net.run(until=10.0)
    # With beta=1 spurious declarations happen; some get cancelled.
    assert sender.stats.spurious_drops >= 0
    assert sender.stats.drops_detected >= sender.stats.retransmits


def test_flight_invariant_holds_throughout_run():
    """flush-cwnd discipline sampled during a lossy, contended run: the
    in-flight set never exceeds the window by more than the final send."""
    flow = make_flow(
        "tcp-pr",
        data_loss=DeterministicLoss([40, 41, 90, 200]),
        pr_config=PrConfig(initial_ssthresh=24),
    )
    sender = flow.sender
    violations = []

    def check():
        # In-flight may transiently exceed a freshly-halved cwnd (those
        # packets were sent under the old window and must drain), but it
        # can never exceed the historical peak window or the receiver
        # window: packets are only *sent* when the window allows.
        limit = min(
            max(sender.stats.cwnd_peak, sender.cwnd),
            float(sender.config.receiver_window),
        )
        if len(sender.to_be_ack) > limit + 1:
            violations.append((flow.network.sim.now, len(sender.to_be_ack), limit))
        flow.network.sim.schedule_in(0.05, check)

    flow.network.sim.schedule(0.1, check)
    flow.run(until=15.0)
    assert not violations, violations[:5]


def test_done_and_stats_consistency():
    flow = make_flow("tcp-pr", pr_config=PrConfig(total_segments=30))
    flow.run(until=10.0)
    sender = flow.sender
    assert sender.done
    assert sender.stats.packets_acked >= 30
    assert sender.stats.data_packets_sent >= 30
    assert not sender.to_be_ack

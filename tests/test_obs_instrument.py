"""Tests for the unified attachment surface (repro.obs.instrument).

The load-bearing contract: attaching instrumentation never schedules
simulator events, so the event count — and therefore the simulation's
results — are bit-identical with and without a registry.
"""

import pytest

from repro.experiments.fig6_multipath import run_single_multipath_flow
from repro.net.network import Network, install_static_routes
from repro.obs import (
    Instrumentation,
    ambient,
    get_ambient,
    maybe_observe,
    observe,
    set_ambient,
)

from conftest import make_flow


# ----------------------------------------------------------------------
# The zero-overhead / bit-identical contract
# ----------------------------------------------------------------------
def _run_flow(variant, instrumented):
    flow = make_flow(variant, seed=4)
    inst = observe(flow.network) if instrumented else None
    flow.run(until=5.0)
    return flow, inst


@pytest.mark.parametrize("variant", ["tcp-pr", "newreno"])
def test_instrumented_run_is_bit_identical(variant):
    plain, _ = _run_flow(variant, instrumented=False)
    observed, inst = _run_flow(variant, instrumented=True)
    assert observed.delivered == plain.delivered
    assert (
        observed.network.sim.dispatched_events
        == plain.network.sim.dispatched_events
    )
    assert len(inst.registry) > 0  # and yet metrics were recorded


def test_multipath_run_is_bit_identical_under_observation():
    plain = run_single_multipath_flow("tcp-pr", epsilon=0.0, duration=3.0, seed=7)
    with ambient(Instrumentation()):
        observed = run_single_multipath_flow(
            "tcp-pr", epsilon=0.0, duration=3.0, seed=7
        )
    assert observed == plain


# ----------------------------------------------------------------------
# Probes
# ----------------------------------------------------------------------
def test_pr_sender_probe_records_estimator_trajectories():
    flow = make_flow("tcp-pr", seed=1)
    inst = observe(flow.network)
    flow.run(until=5.0)
    registry = inst.registry
    for name in ("flow.cwnd", "flow.ewrtt", "flow.mxrtt"):
        series = registry.get(name, flow=1, variant="tcp-pr")
        assert series is not None, name
        assert len(series) > 0, name
    # ewrtt tracks the smoothed RTT: positive, below mxrtt at the end.
    ewrtt = registry.get("flow.ewrtt", flow=1, variant="tcp-pr")
    mxrtt = registry.get("flow.mxrtt", flow=1, variant="tcp-pr")
    assert ewrtt.last > 0
    assert mxrtt.last >= ewrtt.last


def test_newreno_probe_records_srtt_and_rto():
    flow = make_flow("newreno", seed=1)
    inst = observe(flow.network)
    flow.run(until=5.0)
    for name in ("flow.cwnd", "flow.srtt", "flow.rto"):
        series = inst.registry.get(name, flow=1, variant="newreno")
        assert series is not None and len(series) > 0, name


def test_receiver_probe_counts_reordering(monkeypatch):
    # Two paths with different delays force persistent reordering.
    observed = []
    flow = make_flow("tcp-pr", seed=2)
    inst = observe(flow.network)
    flow.run(until=3.0)
    delivered = inst.registry.get("flow.delivered", flow=1)
    assert delivered is not None
    assert delivered.last == flow.receiver.delivered


def test_link_probe_counts_queue_drops():
    flow = make_flow("tcp-pr", queue=4, seed=3)
    inst = observe(flow.network)
    flow.run(until=5.0)
    link = flow.network.link("snd", "rcv")
    counter = inst.registry.get("link.drops", link=link.name, kind="queue")
    assert counter.value == link.queue.drops
    assert counter.value > 0  # queue of 4 must overflow
    depth = inst.registry.get("link.queue_depth", link=link.name)
    assert len(depth) > 0
    assert max(depth.values) <= 4


# ----------------------------------------------------------------------
# attach() dispatch
# ----------------------------------------------------------------------
def test_attach_network_covers_links_and_agents():
    flow = make_flow("tcp-pr")
    inst = Instrumentation().attach(flow.network)
    assert flow.sender.obs is not None
    assert flow.receiver.obs is not None
    for link in flow.network.links.values():
        assert link.obs is not None
        assert link.queue.obs is link.obs


def test_attach_flow_like_object_attaches_both_ends():
    flow = make_flow("tcp-pr")
    inst = Instrumentation().attach(flow)  # has .sender / .receiver
    assert flow.sender.obs is not None
    assert flow.receiver.obs is not None


def test_attach_is_idempotent():
    flow = make_flow("tcp-pr")
    inst = Instrumentation()
    inst.attach(flow.network)
    probe = flow.sender.obs
    inst.attach(flow.network)
    assert flow.sender.obs is probe
    second = Instrumentation()
    second.attach(flow.network)  # someone else already owns the probes
    assert flow.sender.obs is probe


def test_attach_rejects_unknown_components():
    with pytest.raises(TypeError, match="don't know how to observe"):
        Instrumentation().attach(object())


def test_trace_enabled_wires_tracer():
    flow = make_flow("tcp-pr", seed=5)
    inst = Instrumentation(trace=True)
    inst.attach(flow.network)
    flow.run(until=2.0)
    assert len(inst.tracer.events) > 0
    assert inst.tracer.arrival_seqs(1)  # data segments reached the receiver


# ----------------------------------------------------------------------
# Ambient instrumentation
# ----------------------------------------------------------------------
def test_maybe_observe_is_noop_without_ambient():
    assert get_ambient() is None
    flow = make_flow("tcp-pr")
    assert maybe_observe(flow.network) is None
    assert flow.sender.obs is None


def test_ambient_context_attaches_and_restores():
    inst = Instrumentation()
    flow = make_flow("tcp-pr")
    with ambient(inst) as active:
        assert active is inst
        assert get_ambient() is inst
        assert maybe_observe(flow.network) is inst
    assert get_ambient() is None
    assert flow.sender.obs is not None


def test_set_ambient_clears():
    inst = Instrumentation()
    set_ambient(inst)
    try:
        assert get_ambient() is inst
    finally:
        set_ambient(None)
    assert get_ambient() is None


# ----------------------------------------------------------------------
# Monitor factories and export
# ----------------------------------------------------------------------
def test_monitor_factories_register_monitors():
    flow = make_flow("tcp-pr")
    inst = Instrumentation()
    inst.throughput(flow.receiver)
    inst.cwnd(flow.sender)
    timeline = inst.fault_timeline()
    assert timeline is inst.fault_timeline()  # shared instance
    assert len(inst.monitors) == 3


def test_to_records_includes_faults_and_trace():
    flow = make_flow("tcp-pr", seed=6)
    inst = Instrumentation(trace=True)
    inst.attach(flow.network)
    inst.fault_timeline().record(1.0, "link-down", "link snd->rcv", "down")
    flow.run(until=2.0)
    kinds = {record["record"] for record in inst.to_records()}
    assert kinds == {"metric", "trace", "fault"}
